"""Gateway clients (sync + asyncio) and the wire-encoding helpers.

This module is where request lines are *encoded* — :func:`encode_queries`
and :func:`encode_control` are the only places in the package that turn
queries and control operations into wire lines, and
:func:`decode_response_line` is the only place that turns a wire line back
into an :class:`~repro.service.protocol.IMResponse` (via
``IMResponse.from_dict``) or a control payload.  The CLI one-shot verbs
(``repro query``, ``repro shard query``) route through these helpers too,
so the wire format has exactly one definition (docs/gateway.md).

:class:`GatewayClient` is the blocking client: it reconnects through a
:class:`~repro.resilience.retry.RetryPolicy` (connection errors are
``OSError``\\ s, retryable by default) and, when ``honor_retry_after`` is
on, treats a fully shed batch as retryable too — sleeping the server's
``retry_after_s`` hint (capped) on top of the policy's own backoff before
trying again.  When every attempt is shed, the last ``"overloaded"``
responses are returned rather than raised, so callers always get one
response per query.

:class:`AsyncGatewayClient` is the thin asyncio twin the load generator
drives: no retries, raw responses, one in-flight request line per
connection (round-trips are serialised through a lock).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import socket
import time
from typing import Any, Sequence

from repro.errors import BackendError, ParameterError, RetryExhaustedError
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import IMQuery, IMResponse

__all__ = [
    "DEFAULT_PORT",
    "AsyncGatewayClient",
    "GatewayClient",
    "GatewayOverloadedError",
    "decode_response_line",
    "encode_control",
    "encode_queries",
]

#: Default gateway port (`repro gateway serve` binds here unless told not to).
DEFAULT_PORT = 8471


class GatewayOverloadedError(BackendError):
    """Every query in a request line was shed (internal retry control flow).

    Subclasses :class:`~repro.errors.BackendError` so the standard retry
    classification treats shedding as transient; carries the largest
    ``retry_after_s`` the server suggested.
    """

    def __init__(self, retry_after_s: float | None):
        hint = f"retry in {retry_after_s:g}s" if retry_after_s else "retry later"
        super().__init__(f"gateway shed the request ({hint})")
        self.retry_after_s = retry_after_s


# ------------------------------------------------------------------ encoding
def encode_queries(queries: Sequence[IMQuery]) -> str:
    """One wire line (no newline) for a batch of queries.

    A single query encodes as a bare object, several as ``{"queries":
    [...]}`` — exactly the forms
    :func:`~repro.service.protocol.parse_request_line` accepts.
    """
    if not queries:
        raise ParameterError("cannot encode an empty query batch")
    docs = [q.to_dict() for q in queries]
    if len(docs) == 1:
        return json.dumps(docs[0], default=float)
    return json.dumps({"queries": docs}, default=float)


def encode_control(op: str, **fields: Any) -> str:
    """One wire line (no newline) for a control operation."""
    if not op or not isinstance(op, str):
        raise ParameterError(f"op must be a non-empty string, got {op!r}")
    return json.dumps({"op": op, **fields}, default=float)


def decode_response_line(line: str | bytes) -> IMResponse | dict[str, Any]:
    """Decode one server line: an :class:`IMResponse`, or a raw dict for
    control payloads (anything carrying an ``"op"`` key)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"bad JSON response: {exc}") from exc
    if not isinstance(doc, dict):
        raise ParameterError(f"response must be a JSON object, got {doc!r}")
    if "op" in doc:
        return doc
    return IMResponse.from_dict(doc)


def _assign_ids(queries: Sequence[IMQuery]) -> list[IMQuery]:
    """Give every query of a multi-query line a correlation id.

    Shed responses are written at admission time, before served ones, so a
    pipelined batch can come back out of submission order; ids let the
    client restore it.  Single-query lines keep the user's id untouched.
    """
    if len(queries) <= 1:
        return list(queries)
    return [
        q if q.id is not None else dataclasses.replace(q, id=f"_gw{i}")
        for i, q in enumerate(queries)
    ]


def _order_responses(
    queries: Sequence[IMQuery], responses: list[IMResponse]
) -> list[IMResponse]:
    """Match responses back to query order by id (fall back to arrival)."""
    if len(queries) <= 1 or any(q.id is None for q in queries):
        return responses
    by_id = {r.id: r for r in responses if r.id is not None}
    if len(by_id) != len(responses):
        return responses
    ordered = [by_id.get(q.id) for q in queries]
    if any(r is None for r in ordered):
        return responses
    for q, r in zip(queries, ordered):
        if q.id is not None and q.id.startswith("_gw"):
            r.id = None  # strip the ids this client invented
    return ordered


# --------------------------------------------------------------- sync client
class GatewayClient:
    """Blocking JSON-lines client for one gateway endpoint.

    Parameters
    ----------
    retry:
        Reconnect/backoff policy (``None`` disables retrying entirely).
        Connection failures (``OSError``) are retryable under the default
        classification, so a client started before its server simply waits.
    honor_retry_after:
        Treat a fully shed request line as transient: sleep the server's
        ``retry_after_s`` hint (capped at ``max_retry_after_s``) and let
        the retry policy try again.  Exhausted retries *return* the last
        overloaded responses instead of raising.
    """

    _DEFAULT_RETRY = RetryPolicy(
        max_attempts=3, base_delay_s=0.05, max_delay_s=1.0
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout_s: float = 30.0,
        retry: RetryPolicy | None = _DEFAULT_RETRY,
        honor_retry_after: bool = True,
        max_retry_after_s: float = 5.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.retry = retry
        self.honor_retry_after = bool(honor_retry_after)
        self.max_retry_after_s = float(max_retry_after_s)
        self._sock: socket.socket | None = None
        self._file: Any = None

    # ------------------------------------------------------------- lifecycle
    def connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------- I/O
    def _roundtrip_once(self, line: str, expected: int) -> list[Any]:
        """Send one line, read ``expected`` response lines (no retries)."""
        self.connect()
        try:
            self._file.write((line + "\n").encode())
            self._file.flush()
            out = []
            for _ in range(expected):
                raw = self._file.readline()
                if not raw:
                    raise ConnectionError("gateway closed the connection")
                out.append(decode_response_line(raw))
            return out
        except (ConnectionError, OSError):
            # Drop the broken socket so the next attempt reconnects.
            self.close()
            raise

    def _roundtrip(self, line: str, expected: int) -> list[Any]:
        last_overloaded: list[list[IMResponse]] = []

        def attempt() -> list[Any]:
            out = self._roundtrip_once(line, expected)
            if self.honor_retry_after:
                responses = [r for r in out if isinstance(r, IMResponse)]
                if responses and all(
                    r.status == "overloaded" for r in responses
                ):
                    last_overloaded.append(responses)
                    hints = [
                        r.retry_after_s for r in responses
                        if r.retry_after_s is not None
                    ]
                    raise GatewayOverloadedError(max(hints) if hints else None)
            return out

        def on_retry(attempt_no: int, exc: Exception) -> None:
            if isinstance(exc, GatewayOverloadedError) and exc.retry_after_s:
                time.sleep(min(exc.retry_after_s, self.max_retry_after_s))

        if self.retry is None:
            return self._roundtrip_once(line, expected)
        try:
            return self.retry.call(attempt, label="gateway request", on_retry=on_retry)
        except RetryExhaustedError as exc:
            if isinstance(exc.__cause__, GatewayOverloadedError) and last_overloaded:
                return list(last_overloaded[-1])
            raise

    # ---------------------------------------------------------------- public
    def execute(self, queries: Sequence[IMQuery]) -> list[IMResponse]:
        """Serve a batch through the gateway; responses in query order."""
        queries = _assign_ids(queries)
        out = self._roundtrip(encode_queries(queries), expected=len(queries))
        responses = [r for r in out if isinstance(r, IMResponse)]
        if len(responses) != len(queries):
            raise BackendError(
                f"gateway returned {len(responses)} responses "
                f"for {len(queries)} queries"
            )
        return _order_responses(queries, responses)

    def query(self, query: IMQuery) -> IMResponse:
        return self.execute([query])[0]

    def control(self, op: str, **fields: Any) -> dict[str, Any]:
        """Run a control operation (``stats``, ``ping``, ``shutdown``)."""
        out = self._roundtrip(encode_control(op, **fields), expected=1)[0]
        if isinstance(out, IMResponse):  # an error response to a control op
            return out.to_dict()
        return out

    def stats(self) -> dict[str, Any]:
        return self.control("stats")


# -------------------------------------------------------------- async client
class AsyncGatewayClient:
    """Asyncio JSON-lines client: raw responses, no retries.

    One request line is in flight per connection at a time (an internal
    lock serialises round-trips); open several clients for concurrency —
    that is exactly what the load generator does.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT):
        self.host = host
        self.port = int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncGatewayClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _roundtrip(self, line: str, expected: int) -> list[Any]:
        async with self._lock:
            await self.connect()
            self._writer.write((line + "\n").encode())
            await self._writer.drain()
            out = []
            for _ in range(expected):
                raw = await self._reader.readline()
                if not raw:
                    raise ConnectionError("gateway closed the connection")
                out.append(decode_response_line(raw))
            return out

    async def execute(self, queries: Sequence[IMQuery]) -> list[IMResponse]:
        queries = _assign_ids(queries)
        out = await self._roundtrip(encode_queries(queries), expected=len(queries))
        responses = [r for r in out if isinstance(r, IMResponse)]
        if len(responses) != len(queries):
            raise BackendError(
                f"gateway returned {len(responses)} responses "
                f"for {len(queries)} queries"
            )
        return _order_responses(queries, responses)

    async def query(self, query: IMQuery) -> IMResponse:
        return (await self.execute([query]))[0]

    async def control(self, op: str, **fields: Any) -> dict[str, Any]:
        out = (await self._roundtrip(encode_control(op, **fields), expected=1))[0]
        if isinstance(out, IMResponse):
            return out.to_dict()
        return out
