"""repro.gateway — async TCP serving gateway with admission control.

The serving surfaces below this layer (`repro serve`, `repro shard
serve`, `repro update`) are single-threaded JSON-lines loops on
stdin/stdout.  The gateway puts a network front-end over the same wire
protocol and adds the overload behaviour a real deployment needs before
"heavy traffic from millions of users" (ROADMAP.md) is even pronounceable:

- :mod:`repro.gateway.server` — :class:`GatewayServer`, the asyncio TCP
  loop: connection caps and idle/line-length bounds, a bounded admission
  queue with deadline-aware load shedding (structured ``"overloaded"``
  responses carrying ``retry_after_s``, never a hang), per-client
  token-bucket rate limiting, and micro-batch coalescing so one engine
  selection pass answers every compatible in-flight client;
- :mod:`repro.gateway.client` — :class:`GatewayClient` /
  :class:`AsyncGatewayClient` plus the canonical wire-encoding helpers
  (the single definition of how queries become lines), with
  reconnect/backoff through :class:`~repro.resilience.retry.RetryPolicy`
  and ``retry_after_s``-honouring overload retries;
- :mod:`repro.gateway.loadgen` — open- and closed-loop traffic generation
  with zipf-skewed query mixes and streaming percentile/shed-rate
  accounting.

Any engine speaking ``execute(queries) -> responses`` can sit behind the
gateway: the local :class:`~repro.service.engine.QueryEngine`, a
:class:`~repro.shard.cluster.ShardCluster`, or a
:class:`~repro.dynamic.serving.DynamicService`.  Typical use::

    from repro.gateway import GatewayClient, GatewayConfig, serve_in_thread
    from repro.service import EngineConfig, IMQuery, QueryEngine

    engine = QueryEngine(config=EngineConfig(artifact_dir="artifacts/"))
    with serve_in_thread(engine, config=GatewayConfig(queue_depth=64)) as srv:
        with GatewayClient(srv.host, srv.port) as client:
            resp = client.query(IMQuery(dataset="amazon", k=10))

From the shell: ``repro gateway serve|query|loadgen`` (docs/gateway.md).
"""

from repro.gateway.client import (
    DEFAULT_PORT,
    AsyncGatewayClient,
    GatewayClient,
    GatewayOverloadedError,
    decode_response_line,
    encode_control,
    encode_queries,
)
from repro.gateway.loadgen import LoadGenConfig, LoadStats, run_loadgen
from repro.gateway.server import (
    GatewayConfig,
    GatewayServer,
    GatewayStats,
    serve_in_thread,
)

__all__ = [
    "DEFAULT_PORT",
    "GatewayConfig",
    "GatewayServer",
    "GatewayStats",
    "serve_in_thread",
    "GatewayClient",
    "AsyncGatewayClient",
    "GatewayOverloadedError",
    "encode_queries",
    "encode_control",
    "decode_response_line",
    "LoadGenConfig",
    "LoadStats",
    "run_loadgen",
]
