"""Load generation against a gateway: open/closed loops, zipf query mixes.

Two canonical traffic shapes (the difference matters for overload
studies):

- **closed loop** — ``concurrency`` workers each hold one connection and
  issue the next query the moment the previous answer lands.  Offered
  load adapts to the server: a slow server is offered less.  This measures
  *capacity* (max sustainable throughput).
- **open loop** — arrivals fire on an exponential (Poisson) clock at
  ``rate_per_s`` regardless of completions, the way a population of
  independent users behaves.  Offered load does *not* back off, so
  pushing ``rate_per_s`` past capacity is exactly how shedding and queue
  deadlines are exercised (docs/gateway.md).

The query mix is zipf-skewed: the ``k_choices`` ranks get probability
``1/rank**zipf_s`` (normalised), so a few hot query classes dominate —
which is what makes the gateway's micro-batch coalescing and the engine's
fingerprint groups earn their keep.  Everything is driven by one seeded
``numpy`` RNG, so a load run is reproducible end to end.

Latency accounting is streaming: per-status counters plus one
:class:`~repro.telemetry.metrics.Histogram` per outcome class, so
p50/p95/p99 come out of geometric buckets without storing samples —
the same machinery the server's own telemetry uses.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ParameterError
from repro.service.protocol import IMQuery
from repro.telemetry.metrics import Histogram

from repro.gateway.client import DEFAULT_PORT, AsyncGatewayClient

__all__ = ["LoadGenConfig", "LoadStats", "run_loadgen"]


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation run.

    ``total_requests`` bounds the run by count; otherwise ``duration_s``
    bounds it by wall clock.  ``rate_per_s`` only applies to the open
    loop; ``concurrency`` is the worker count (closed loop) or the
    connection-pool size (open loop).
    """

    mode: str = "closed"  # "closed" | "open"
    duration_s: float = 5.0
    total_requests: int | None = None
    rate_per_s: float = 50.0
    concurrency: int = 4
    dataset: str = "amazon"
    model: str = "IC"
    k_choices: tuple[int, ...] = (5, 10, 20, 35, 50)
    theta_cap: int | None = 300
    epsilon: float = 0.5
    sketch_seed: int = 0
    deadline_s: float | None = None
    zipf_s: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ParameterError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.duration_s <= 0:
            raise ParameterError(f"duration_s must be positive, got {self.duration_s}")
        if self.total_requests is not None and self.total_requests < 1:
            raise ParameterError(
                f"total_requests must be >= 1, got {self.total_requests}"
            )
        if self.rate_per_s <= 0:
            raise ParameterError(f"rate_per_s must be positive, got {self.rate_per_s}")
        if self.concurrency < 1:
            raise ParameterError(f"concurrency must be >= 1, got {self.concurrency}")
        if not self.k_choices:
            raise ParameterError("k_choices must not be empty")
        if self.zipf_s < 0:
            raise ParameterError(f"zipf_s must be >= 0, got {self.zipf_s}")

    def mix_probabilities(self) -> np.ndarray:
        """Zipf popularity over ``k_choices`` ranks (rank 1 = first)."""
        ranks = np.arange(1, len(self.k_choices) + 1, dtype=np.float64)
        weights = ranks ** -float(self.zipf_s)
        return weights / weights.sum()


class LoadStats:
    """Streaming accounting of one load run (no per-request storage)."""

    def __init__(self) -> None:
        self.offered = 0
        self.ok = 0
        self.shed = 0
        self.timeout = 0
        self.error = 0
        self.transport_errors = 0
        self.ok_latency = Histogram()
        self.all_latency = Histogram()

    def record(self, status: str, latency_s: float) -> None:
        self.all_latency.observe(latency_s)
        if status == "ok":
            self.ok += 1
            self.ok_latency.observe(latency_s)
        elif status == "overloaded":
            self.shed += 1
        elif status == "timeout":
            self.timeout += 1
        else:
            self.error += 1

    @property
    def completed(self) -> int:
        return self.ok + self.shed + self.timeout + self.error

    def summary(self, elapsed_s: float) -> dict[str, Any]:
        done = self.completed
        return {
            "elapsed_s": float(elapsed_s),
            "offered": self.offered,
            "completed": done,
            "ok": self.ok,
            "shed": self.shed,
            "timeout": self.timeout,
            "error": self.error,
            "transport_errors": self.transport_errors,
            "throughput_qps": self.ok / elapsed_s if elapsed_s > 0 else 0.0,
            "shed_rate": self.shed / done if done else 0.0,
            "p50_ms": self.ok_latency.percentile(0.50) * 1e3,
            "p95_ms": self.ok_latency.percentile(0.95) * 1e3,
            "p99_ms": self.ok_latency.percentile(0.99) * 1e3,
            "mean_ms": self.ok_latency.mean * 1e3,
        }


def _make_query(config: LoadGenConfig, rng: np.random.Generator, n: int) -> IMQuery:
    k = int(rng.choice(config.k_choices, p=config.mix_probabilities()))
    return IMQuery(
        dataset=config.dataset,
        model=config.model,
        k=k,
        epsilon=config.epsilon,
        seed=config.sketch_seed,
        theta_cap=config.theta_cap,
        deadline_s=config.deadline_s,
        id=f"lg{n}",
    )


async def _fire(
    client: AsyncGatewayClient, query: IMQuery, stats: LoadStats
) -> None:
    t0 = time.monotonic()
    try:
        resp = await client.query(query)
    except (ConnectionError, OSError):
        stats.transport_errors += 1
        return
    stats.record(resp.status, time.monotonic() - t0)


async def _closed_loop(
    host: str, port: int, config: LoadGenConfig, stats: LoadStats
) -> float:
    deadline = time.monotonic() + config.duration_s
    budget = config.total_requests
    seq = 0
    lock = asyncio.Lock()

    async def worker(worker_id: int) -> None:
        nonlocal seq
        rng = np.random.default_rng(config.seed * 10_007 + worker_id)
        client = AsyncGatewayClient(host, port)
        try:
            while True:
                async with lock:
                    if budget is not None and seq >= budget:
                        return
                    if budget is None and time.monotonic() >= deadline:
                        return
                    n = seq
                    seq += 1
                stats.offered += 1
                await _fire(client, _make_query(config, rng, n), stats)
        finally:
            await client.close()

    t0 = time.monotonic()
    await asyncio.gather(*(worker(w) for w in range(config.concurrency)))
    return time.monotonic() - t0


async def _open_loop(
    host: str, port: int, config: LoadGenConfig, stats: LoadStats
) -> float:
    rng = np.random.default_rng(config.seed)
    pool = [AsyncGatewayClient(host, port) for _ in range(config.concurrency)]
    tasks: list[asyncio.Task] = []
    t0 = time.monotonic()
    deadline = t0 + config.duration_s
    next_at = t0
    n = 0
    try:
        while True:
            if config.total_requests is not None:
                if n >= config.total_requests:
                    break
            elif time.monotonic() >= deadline:
                break
            delay = next_at - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            # Exponential interarrival: a Poisson arrival process whose
            # clock never waits for completions (that is the point).
            next_at += float(rng.exponential(1.0 / config.rate_per_s))
            stats.offered += 1
            client = pool[n % len(pool)]
            tasks.append(
                asyncio.ensure_future(
                    _fire(client, _make_query(config, rng, n), stats)
                )
            )
            n += 1
        if tasks:
            await asyncio.gather(*tasks)
        return time.monotonic() - t0
    finally:
        for client in pool:
            await client.close()


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    config: LoadGenConfig | None = None,
) -> dict[str, Any]:
    """Run one load-generation pass; returns the summary dict."""
    config = config or LoadGenConfig()
    stats = LoadStats()

    async def _main() -> float:
        if config.mode == "closed":
            return await _closed_loop(host, port, config, stats)
        return await _open_loop(host, port, config, stats)

    elapsed = asyncio.run(_main())
    summary = stats.summary(elapsed)
    summary["mode"] = config.mode
    if config.mode == "open":
        summary["offered_rate_qps"] = config.rate_per_s
    summary["concurrency"] = config.concurrency
    return summary
