"""Serialise a telemetry session to the two on-disk artefacts.

- ``metrics.json`` — the registry snapshot (schema ``repro-telemetry/1``)
  plus optional run metadata under ``"run"``;
- ``trace.json`` — Chrome trace-event format (open via ``chrome://tracing``
  or https://ui.perfetto.dev), with the span tree additionally embedded
  under the non-standard ``"spanTree"`` key (Chrome ignores unknown keys)
  so one file serves both machines and humans.

Benchmarks use :func:`bench_payload` /:func:`write_bench_json` to emit the
``BENCH_*.json``-compatible schema (``repro-bench/1``): one object per
benchmark with free-form scalar ``fields`` and the full metrics snapshot,
machine-diffable across PRs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

__all__ = [
    "write_metrics_json",
    "write_chrome_trace",
    "write_report",
    "bench_payload",
    "write_bench_json",
    "BENCH_SCHEMA",
]

BENCH_SCHEMA = "repro-bench/1"


def _environment() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "unix_time": time.time(),
    }


def write_metrics_json(path: str | Path, registry, run: dict[str, Any] | None = None) -> Path:
    """Write the registry snapshot (plus run metadata) as JSON; returns path."""
    doc = registry.snapshot()
    doc["run"] = dict(run or {})
    doc["environment"] = _environment()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True, default=float))
    return path


def write_chrome_trace(path: str | Path, tracer, run: dict[str, Any] | None = None) -> Path:
    """Write the span tree as a Chrome trace-event JSON file; returns path."""
    doc = tracer.to_chrome_trace()
    doc["spanTree"] = tracer.to_dict()
    doc["otherData"] = {"run": dict(run or {}), **_environment()}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, default=float))
    return path


def write_report(out_dir: str | Path, telemetry, run: dict[str, Any] | None = None) -> dict[str, Path]:
    """Write ``metrics.json`` + ``trace.json`` under ``out_dir``."""
    out = Path(out_dir)
    return {
        "metrics": write_metrics_json(out / "metrics.json", telemetry.registry, run),
        "trace": write_chrome_trace(out / "trace.json", telemetry.tracer, run),
    }


def bench_payload(
    name: str,
    registry=None,
    *,
    fields: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The unified benchmark record: schema + fields + metrics snapshot."""
    return {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "environment": _environment(),
        "fields": dict(fields or {}),
        "metrics": registry.snapshot() if registry is not None else None,
    }


def write_bench_json(
    path: str | Path,
    name: str,
    registry=None,
    *,
    fields: dict[str, Any] | None = None,
) -> Path:
    """Write one ``BENCH_*.json``-compatible record; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            bench_payload(name, registry, fields=fields),
            indent=2,
            sort_keys=True,
            default=float,
        )
    )
    return path
