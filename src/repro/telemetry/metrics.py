"""Counters, gauges, and streaming histograms behind one registry.

Design constraints (ISSUE 1 / docs/observability.md):

- **Cheap enough for hot loops.** Instruments are plain Python objects with
  one-attribute updates; the disabled path is a single boolean check that
  callers hoist out of their loops (``tel = get(); if tel.enabled: ...``).
- **Thread-safe.** The gateway (docs/gateway.md) records from concurrent
  connection handlers and its engine executor thread, so every mutation —
  ``inc``/``set``/``observe`` and the snapshot/merge paths — holds a
  per-instrument :class:`threading.Lock`.  A read-modify-write like
  ``value += amount`` is *not* atomic under the GIL (the interpreter can
  switch threads between the read and the write), so unlocked concurrent
  increments silently lose updates.  An uncontended lock costs ~100 ns,
  invisible next to the work being measured.
- **Mergeable across processes.** Every instrument serialises to a plain
  picklable dict (:meth:`MetricsRegistry.snapshot`); snapshots support
  element-wise :func:`merge_snapshots` (fan-in from workers) and
  :func:`diff_snapshots` (per-task deltas in a forked worker, where the
  child inherits the parent's accumulated state and must ship only what it
  added).  This is the per-worker buffer + merge-on-reduce protocol the
  multiprocessing backend uses.
- **Quantiles without storing samples.** :class:`Histogram` buckets
  observations geometrically (base ``2**(1/4)``, ~19% relative error) in a
  sparse dict, so p50/p95/p99 come from bucket boundaries in O(buckets).

Only the standard library is used; numpy never enters the hot path.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "diff_snapshots",
    "SCHEMA",
]

#: Schema identifier stamped into every snapshot / exported JSON document.
SCHEMA = "repro-telemetry/1"

# Histogram bucketing: geometric with 4 buckets per octave, floor 1e-9
# (nanosecond-scale latencies) — index = floor(log(x / _HIST_MIN) / log(base)).
_HIST_BASE = 2.0 ** 0.25
_HIST_LOG_BASE = math.log(_HIST_BASE)
_HIST_MIN = 1e-9


class Counter:
    """Monotonically increasing value (events, bytes, seconds-of-work)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (sizes, ratios, utilisation)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.value = v


class Histogram:
    """Streaming geometric-bucket histogram with min/max/sum tracking."""

    __slots__ = ("counts", "count", "sum", "min", "max", "_lock")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        v = float(value)
        b = self._bucket(v)
        with self._lock:
            self.counts[b] = self.counts.get(b, 0) + 1
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    @staticmethod
    def _bucket(v: float) -> int:
        if v <= _HIST_MIN:
            return 0
        return int(math.log(v / _HIST_MIN) / _HIST_LOG_BASE) + 1

    @staticmethod
    def _bucket_upper(b: int) -> float:
        if b <= 0:
            return _HIST_MIN
        return _HIST_MIN * _HIST_BASE ** b

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (``q`` in [0, 1]) from bucket boundaries."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for b in sorted(self.counts):
            seen += self.counts[b]
            if seen >= rank:
                est = self._bucket_upper(b)
                return min(max(est, self.min), self.max)
        return self.max

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "counts": {str(b): c for b, c in self.counts.items()},
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Histogram":
        h = cls()
        h.counts = {int(b): int(c) for b, c in d.get("counts", {}).items()}
        h.count = int(d.get("count", 0))
        h.sum = float(d.get("sum", 0.0))
        h.min = d.get("min")
        h.min = math.inf if h.min is None else float(h.min)
        h.max = d.get("max")
        h.max = -math.inf if h.max is None else float(h.max)
        return h


class MetricsRegistry:
    """Named instruments, creatable on first touch, snapshot-mergeable.

    Names are dotted lowercase paths (``sampling.rrr_sets``); the full
    naming convention lives in docs/observability.md.  A name owns exactly
    one instrument kind — asking for ``counter(name)`` after ``gauge(name)``
    raises ``KeyError`` rather than silently aliasing.
    """

    def __init__(self) -> None:
        self.enabled = True
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- factories
    def _get(self, table: dict, name: str, factory, kind: str):
        inst = table.get(name)
        if inst is None:
            with self._lock:
                self._check_unique(name, kind)
                inst = table.setdefault(name, factory())
        return inst

    def _check_unique(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise KeyError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, name, Histogram, "histogram")

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict (picklable, JSON-able) copy of every instrument."""
        with self._lock:
            return {
                "schema": SCHEMA,
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a snapshot (e.g. a worker's delta) into this registry.

        Counters and histogram buckets add; gauges last-write-wins (the
        incoming snapshot is considered newer).
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            h = self.histogram(name)
            other = Histogram.from_dict(data)
            with h._lock:
                for b, c in other.counts.items():
                    h.counts[b] = h.counts.get(b, 0) + c
                h.count += other.count
                h.sum += other.sum
                h.min = min(h.min, other.min)
                h.max = max(h.max, other.max)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def to_json(self, **extra: Any) -> str:
        doc = self.snapshot()
        doc.update(extra)
        return json.dumps(doc, indent=2, sort_keys=True, default=float)


def merge_snapshots(snaps: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Combine many snapshots into one (the reduce step of the protocol)."""
    reg = MetricsRegistry()
    for s in snaps:
        reg.merge_snapshot(s)
    return reg.snapshot()


def diff_snapshots(after: dict[str, Any], before: dict[str, Any]) -> dict[str, Any]:
    """``after - before``: what was recorded between two snapshots.

    Used by forked workers: the child inherits the parent's accumulated
    registry, so its contribution is the delta around each task.  Counters
    and histogram bucket counts subtract; gauges keep ``after``'s values
    (only gauges that changed are included); a delta histogram's min/max are
    taken from ``after`` (approximate, but quantiles stay exact because they
    derive from the subtracted buckets).
    """
    b_counters = before.get("counters", {})
    counters = {
        k: v - b_counters.get(k, 0.0)
        for k, v in after.get("counters", {}).items()
        if v != b_counters.get(k, 0.0)
    }
    b_gauges = before.get("gauges", {})
    gauges = {
        k: v
        for k, v in after.get("gauges", {}).items()
        if k not in b_gauges or v != b_gauges[k]
    }
    histograms: dict[str, Any] = {}
    b_hists = after.get("histograms", {})
    for name, a in b_hists.items():
        b = before.get("histograms", {}).get(name)
        if b is None:
            histograms[name] = a
            continue
        counts = dict(a.get("counts", {}))
        for bucket, c in b.get("counts", {}).items():
            left = counts.get(bucket, 0) - c
            if left:
                counts[bucket] = left
            else:
                counts.pop(bucket, None)
        d_count = a["count"] - b["count"]
        if d_count <= 0:
            continue
        histograms[name] = {
            "counts": counts,
            "count": d_count,
            "sum": a["sum"] - b["sum"],
            "min": a["min"],
            "max": a["max"],
        }
    return {
        "schema": SCHEMA,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }
