"""Adapters projecting existing stat records onto the unified registry.

The repo predates the telemetry subsystem, so several layers already keep
their own counters: :class:`repro.core.params.KernelStats` (per-emulated-
thread operation counts), :class:`repro.simmachine.cache.AccessCounts`
(cache hits/misses), and the :class:`repro._util.StageTimes` wall-clock
breakdown.  (:class:`repro.distributed.comm.CommStats` instruments itself
live instead — see :mod:`repro.distributed.comm`.)  The functions here
map each of them onto registry metric names so simulated (:mod:`simmachine`)
and real (:mod:`multiprocessing`) runs share one schema — the only
difference is which backend-specific names appear alongside.

Everything is duck-typed on the stat objects' public attributes, so this
module imports nothing from the rest of the package (no cycles) and the
layers stay importable without telemetry enabled.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "record_kernel_stats",
    "record_access_counts",
    "record_stage_times",
    "record_service_stats",
    "record_shard_stats",
    "record_codec_stats",
]


def _slug(name: str) -> str:
    return name.strip().lower().replace(" ", "_")


def record_kernel_stats(registry, kernel: str, stats: Any) -> None:
    """Project a ``KernelStats`` onto ``kernel.<name>.*`` metrics.

    Per-thread vectors are recorded as totals plus a load-imbalance gauge
    (max/mean of per-thread ops), matching the quantity the scaling
    experiments reason about.
    """
    key = _slug(kernel)
    for field in ("loads", "stores", "atomics", "compute"):
        vec = getattr(stats, field)
        registry.counter(f"kernel.{key}.{field}").inc(float(vec.sum()))
    registry.counter(f"kernel.{key}.serial_ops").inc(float(stats.serial_ops))
    registry.counter(f"kernel.{key}.sync_barriers").inc(int(stats.sync_barriers))
    per_thread = stats.per_thread_ops()
    mean = float(per_thread.mean()) if per_thread.size else 0.0
    imbalance = float(per_thread.max()) / mean if mean > 0 else 1.0
    registry.gauge(f"kernel.{key}.imbalance").set(imbalance)
    registry.gauge(f"kernel.{key}.num_threads").set(int(stats.num_threads))


def record_access_counts(registry, kernel: str, counts: Any) -> None:
    """Project an ``AccessCounts`` onto ``cache.<name>.*`` counters."""
    key = _slug(kernel)
    for field in ("l1_hits", "l1_misses", "l2_hits", "l2_misses"):
        registry.counter(f"cache.{key}.{field}").inc(int(getattr(counts, field)))


def record_service_stats(registry, service: Any, cache: Any) -> None:
    """Project serving-layer stats onto ``service.*`` summary gauges.

    The engine increments the live ``service.*`` *counters* (queries, cache
    hits/misses, timeouts) at each event; this bridge mirrors the cumulative
    :class:`~repro.service.engine.ServiceStats` /
    :class:`~repro.service.cache.CacheStats` records as *gauges*, so a
    metrics snapshot carries both the event stream and the current totals
    (idempotent — safe to call after every batch).
    """
    for name, value in service.to_dict().items():
        registry.gauge(f"service.stats.{_slug(name)}").set(float(value))
    for name, value in cache.to_dict().items():
        registry.gauge(f"service.cache_stats.{_slug(name)}").set(float(value))


def record_shard_stats(registry, stats: Any, health: Any = None) -> None:
    """Project router-layer stats onto ``shard.*`` summary gauges.

    The router increments the live ``shard.router.*`` *counters* (queries,
    failovers, shard losses) at each event; this bridge mirrors the
    cumulative :class:`~repro.shard.router.RouterStats` record — plus, when
    given a health snapshot, the number of healthy replicas — as *gauges*
    (idempotent — safe to call after every batch)."""
    for name, value in stats.to_dict().items():
        registry.gauge(f"shard.stats.{_slug(name)}").set(float(value))
    if health is not None:
        healthy = sum(
            1
            for replicas in health.values()
            for state in replicas.values()
            if state.get("healthy")
        )
        registry.gauge("shard.stats.healthy_replicas").set(healthy)


def record_codec_stats(registry, store: Any) -> None:
    """Project a compressed store's codec accounting onto ``sketch.compressed.*``.

    Duck-typed on :class:`~repro.sketch.compressed_store.CompressedRRRStore`'s
    public surface (``nbytes()``, ``compression_ratio``, ``encode_seconds``,
    ``decode_seconds``).  The store calls this after every encode/decode —
    gauges are idempotent, so the snapshot always carries the current
    footprint, ratio, and cumulative codec time (``perf_counter``-based)
    alongside the event-stream ``sketch.compressed.sets`` counter.
    """
    registry.gauge("sketch.compressed.bytes").set(float(store.nbytes()))
    registry.gauge("sketch.compressed.ratio").set(float(store.compression_ratio))
    registry.gauge("sketch.compressed.encode_s").set(float(store.encode_seconds))
    registry.gauge("sketch.compressed.decode_s").set(float(store.decode_seconds))


def record_stage_times(registry, times: Any) -> None:
    """Project a ``StageTimes`` onto ``phase.<stage>_s`` counters.

    These are the numbers Figure 2's breakdown plots; accumulating them as
    counters lets repeated runs in one session sum naturally.
    """
    for stage, seconds in times.stages.items():
        registry.counter(f"phase.{_slug(stage)}_s").inc(float(seconds))
