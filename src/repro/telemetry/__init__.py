"""repro.telemetry — unified tracing, metrics, and profiling.

One *telemetry session* (:class:`Telemetry`) bundles a
:class:`~repro.telemetry.metrics.MetricsRegistry` (counters / gauges /
streaming histograms) with a :class:`~repro.telemetry.tracing.Tracer`
(hierarchical spans, optional :mod:`tracemalloc` attribution).  A global
session exists at import time but is **disabled**: every instrumented call
site in the package guards with one boolean check, so the subsystem costs
nothing until switched on.

Typical use::

    from repro import telemetry

    with telemetry.session() as tel:          # enable, scoped
        result = EfficientIMM(graph).run(params)
        telemetry.write_report("out/", tel, run={"dataset": "amazon"})

    tel = telemetry.enable()                  # or: enable globally
    ...
    print(tel.registry.snapshot()["counters"]["sampling.rrr_sets"])

Hot-loop call sites follow the pattern::

    tel = telemetry.get()
    ...
    if tel.enabled:
        tel.registry.counter("sampling.rrr_sets").inc(batch)
    with tel.span("imm.sampling", level=level):   # no-op when disabled
        ...

Multiprocessing: forked workers inherit the enabled session; the
:mod:`repro.runtime.backends` wrapper snapshots the worker registry around
each task and ships the delta back, where it is merged on reduce (see
:func:`repro.telemetry.metrics.diff_snapshots`).  Everything is standard
library + numpy-free; the package has no third-party dependencies.
"""

from __future__ import annotations

import contextlib
import tracemalloc
from typing import Any

from repro.telemetry.bridge import (
    record_access_counts,
    record_kernel_stats,
    record_service_stats,
    record_shard_stats,
    record_stage_times,
)
from repro.telemetry.export import (
    BENCH_SCHEMA,
    bench_payload,
    write_bench_json,
    write_chrome_trace,
    write_metrics_json,
    write_report,
)
from repro.telemetry.metrics import (
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
)
from repro.telemetry.tracing import NULL_SPAN, Span, Tracer, traced

__all__ = [
    "Telemetry",
    "get",
    "enable",
    "disable",
    "is_enabled",
    "session",
    "span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "traced",
    "merge_snapshots",
    "diff_snapshots",
    "record_kernel_stats",
    "record_access_counts",
    "record_service_stats",
    "record_shard_stats",
    "record_stage_times",
    "write_metrics_json",
    "write_chrome_trace",
    "write_report",
    "bench_payload",
    "write_bench_json",
    "SCHEMA",
    "BENCH_SCHEMA",
]


class Telemetry:
    """A registry + tracer pair with one shared enable switch."""

    __slots__ = ("registry", "tracer", "enabled", "memory", "_started_tracemalloc")

    def __init__(self, *, enabled: bool = False, memory: bool = False):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(memory=memory)
        self.memory = bool(memory)
        self.enabled = False
        self._started_tracemalloc = False
        self._set_enabled(enabled)

    def _set_enabled(self, value: bool) -> None:
        self.enabled = bool(value)
        self.registry.enabled = self.enabled
        self.tracer.enabled = self.enabled
        if self.enabled and self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        elif not self.enabled and self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    # ------------------------------------------------------------ conveniences
    def span(self, name: str, **attrs: Any):
        """Open a span (no-op context manager while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot()

    def clear(self) -> None:
        self.registry.clear()
        self.tracer.clear()


_GLOBAL = Telemetry(enabled=False)


def get() -> Telemetry:
    """The active telemetry session (module-global; workers inherit it)."""
    return _GLOBAL


def enable(*, memory: bool = False, fresh: bool = True) -> Telemetry:
    """Switch the global session on (optionally clearing prior data)."""
    global _GLOBAL
    if fresh:
        _GLOBAL = Telemetry(enabled=True, memory=memory)
    else:
        _GLOBAL.memory = memory or _GLOBAL.memory
        _GLOBAL.tracer.memory = _GLOBAL.memory
        _GLOBAL._set_enabled(True)
    return _GLOBAL


def disable() -> None:
    """Switch the global session off (data is retained until re-enabled)."""
    _GLOBAL._set_enabled(False)


def is_enabled() -> bool:
    return _GLOBAL.enabled


def span(name: str, **attrs: Any):
    """Module-level shorthand for ``get().span(...)``."""
    return _GLOBAL.span(name, **attrs)


@contextlib.contextmanager
def session(*, memory: bool = False):
    """Scoped telemetry: install a fresh enabled session, restore on exit.

    The session object stays readable after the block (tests inspect it),
    but the previous global session — usually the disabled default — is
    reinstated, so instrumentation overhead vanishes again.
    """
    global _GLOBAL
    prev = _GLOBAL
    tel = Telemetry(enabled=True, memory=memory)
    _GLOBAL = tel
    try:
        yield tel
    finally:
        tel._set_enabled(False)
        _GLOBAL = prev
