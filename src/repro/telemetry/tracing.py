"""Hierarchical span tracing with JSON and Chrome trace-event export.

A *span* is a named wall-clock interval with attributes and children; the
tree mirrors the call structure (``imm.run`` > ``imm.sampling`` > ...).
Spans are recorded via a context manager or the :func:`traced` decorator;
nesting is tracked per thread, so spans opened on worker threads parent
correctly within their own thread.

Optional memory attribution: a :class:`Tracer` built with ``memory=True``
reads :mod:`tracemalloc` at span entry/exit (when tracing is active) and
stamps ``mem_delta_bytes`` / ``mem_peak_bytes`` onto each span.

Exports:

- :meth:`Tracer.to_dict` — the span tree as nested JSON (the repo schema);
- :meth:`Tracer.to_chrome_trace` — flat ``traceEvents`` in the Chrome
  trace-event format, loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import functools
import os
import threading
import time
import tracemalloc
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One named interval; durations are :func:`time.perf_counter` based."""

    __slots__ = ("name", "attrs", "children", "t0", "t1", "tid", "_mem0")

    def __init__(self, name: str, attrs: dict[str, Any], tid: int):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.t0 = 0.0
        self.t1 = 0.0
        self.tid = tid
        self._mem0 = None

    @property
    def duration_s(self) -> float:
        return max(self.t1 - self.t0, 0.0)

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "name": self.name,
            "start_s": self.t0,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def iter_tree(self) -> Iterator["Span"]:
        yield self
        for c in self.children:
            yield from c.iter_tree()

    def find(self, name: str) -> list["Span"]:
        """All spans named ``name`` in this subtree (depth-first order)."""
        return [s for s in self.iter_tree() if s.name == name]


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SpanContext:
    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.tracer._push(self.span)
        if self.tracer.memory and tracemalloc.is_tracing():
            self.span._mem0 = tracemalloc.get_traced_memory()
        self.span.t0 = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.t1 = time.perf_counter()
        if self.span._mem0 is not None:
            cur, peak = tracemalloc.get_traced_memory()
            self.span.attrs["mem_delta_bytes"] = cur - self.span._mem0[0]
            self.span.attrs["mem_peak_bytes"] = peak
        self.tracer._pop(self.span)


class Tracer:
    """Collects span trees; one instance per telemetry session."""

    def __init__(self, *, memory: bool = False):
        self.enabled = True
        self.memory = bool(memory)
        self.roots: list[Span] = []
        self.epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- stack
    def _stack(self) -> list[Span]:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def _push(self, span: Span) -> None:
        st = self._stack()
        if st:
            st[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        st.append(span)

    def _pop(self, span: Span) -> None:
        st = self._stack()
        if st and st[-1] is span:
            st.pop()
        elif span in st:  # pragma: no cover - unbalanced exit guard
            st.remove(span)

    # ------------------------------------------------------------------ api
    def span(self, name: str, **attrs: Any):
        """Context manager opening a child span of the current span."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, Span(name, attrs, threading.get_ident()))

    def current(self) -> Span | None:
        st = self._stack()
        return st[-1] if st else None

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()
        self._local = threading.local()
        self.epoch = time.perf_counter()

    def find(self, name: str) -> list[Span]:
        out: list[Span] = []
        for r in self.roots:
            out.extend(r.find(name))
        return out

    # -------------------------------------------------------------- exports
    def to_dict(self) -> dict[str, Any]:
        return {"spans": [r.to_dict() for r in self.roots]}

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON (complete ``"X"`` events, microseconds)."""
        pid = os.getpid()
        events = []
        tids: dict[int, int] = {}
        for root in self.roots:
            for s in root.iter_tree():
                tid = tids.setdefault(s.tid, len(tids))
                ev: dict[str, Any] = {
                    "name": s.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": (s.t0 - self.epoch) * 1e6,
                    "dur": s.duration_s * 1e6,
                }
                if s.attrs:
                    ev["args"] = {k: _jsonable(v) for k, v in s.attrs.items()}
                events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(v: Any) -> Any:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator recording each call of the wrapped function as a span.

    The tracer is resolved at call time through the active telemetry
    session, so decorating a function costs nothing while telemetry is off.
    """

    def wrap(fn: Callable) -> Callable:
        span_name = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            from repro.telemetry import get

            tel = get()
            if not tel.enabled:
                return fn(*args, **kwargs)
            with tel.tracer.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return inner

    return wrap
