"""Small shared utilities: RNG normalisation, timers, formatting helpers.

Kept deliberately dependency-free (numpy only) so every subpackage may import
it without cycles.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Timer",
    "StageTimes",
    "human_bytes",
    "human_time",
    "check_positive_int",
    "check_fraction",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share stream state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used to give each simulated/actual worker its own stream so that results
    are reproducible independently of scheduling order — the Python analogue
    of the per-thread RNG streams Ripples and EfficientIMM both use.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = np.random.SeedSequence(seed) if not isinstance(seed, np.random.Generator) else None
    if root is None:
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)  # type: ignore[union-attr]
        return [np.random.default_rng(int(s)) for s in seeds]
    return [np.random.default_rng(s) for s in root.spawn(n)]


@dataclass
class Timer:
    """Context-manager stopwatch measuring wall-clock seconds."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._start


@dataclass
class StageTimes:
    """Accumulates named per-stage wall-clock times (runtime breakdown).

    Mirrors the paper's Figure 2 breakdown: Generate_RRRsets,
    Find_Most_Influential_Set, and everything else.
    """

    stages: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    def measure(self, name: str):
        """Return a context manager charging its elapsed time to ``name``."""
        outer = self

        class _Stage:
            def __enter__(self):
                self._t0 = time.perf_counter()
                return self

            def __exit__(self, *exc):
                outer.add(name, time.perf_counter() - self._t0)

        return _Stage()

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def fractions(self) -> dict[str, float]:
        t = self.total
        if t <= 0.0:
            return {k: 0.0 for k in self.stages}
        return {k: v / t for k, v in self.stages.items()}


_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]


def human_bytes(n: float) -> str:
    """Render a byte count with a binary unit suffix (e.g. ``1.5 GiB``)."""
    n = float(n)
    for unit in _BYTE_UNITS:
        if abs(n) < 1024.0 or unit == _BYTE_UNITS[-1]:
            return f"{n:,.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """Render seconds compactly (``823 us``, ``1.24 s``, ``3m12s``)."""
    s = float(seconds)
    if s < 1e-3:
        return f"{s * 1e6:.0f} us"
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    if s < 120.0:
        return f"{s:.2f} s"
    m, rem = divmod(s, 60.0)
    return f"{int(m)}m{rem:02.0f}s"


def check_positive_int(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer; return it as ``int``."""
    iv = int(value)
    if iv != value or iv <= 0:
        raise ParameterError(f"{name} must be a positive integer, got {value!r}")
    return iv


def check_fraction(name: str, value: float, *, open_left: bool = True) -> float:
    """Validate that ``value`` lies in (0, 1] (or [0, 1] if not open_left)."""
    fv = float(value)
    lo_ok = fv > 0.0 if open_left else fv >= 0.0
    if not (lo_ok and fv <= 1.0):
        interval = "(0, 1]" if open_left else "[0, 1]"
        raise ParameterError(f"{name} must be in {interval}, got {value!r}")
    return fv


def log2ceil(n: int) -> int:
    """Smallest ``i`` with ``2**i >= n`` (used by IMM's estimation loop)."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))
