"""Tests for the HBMax-style compression codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.sketch.compress import (
    CompressionReport,
    DeltaVarintCodec,
    HuffmanCodec,
    compare_codecs,
)


class TestHuffman:
    def test_roundtrip_simple(self):
        codec = HuffmanCodec(np.array([10, 5, 1, 1]))
        data = np.array([0, 1, 2, 3, 0, 0, 1])
        assert codec.decode(codec.encode(data)).tolist() == data.tolist()

    def test_roundtrip_empty(self):
        codec = HuffmanCodec(np.array([1, 1]))
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0

    def test_frequent_symbols_get_short_codes(self):
        freq = np.array([1000, 1, 1, 1, 1, 1, 1, 1])
        lengths = HuffmanCodec(freq).code_lengths()
        assert lengths[0] == lengths.min()
        assert lengths[0] < lengths[1:].min()

    def test_single_symbol(self):
        codec = HuffmanCodec(np.array([5]))
        data = np.array([0, 0, 0])
        assert codec.decode(codec.encode(data)).tolist() == [0, 0, 0]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        lengths = HuffmanCodec(rng.integers(1, 100, size=40)).code_lengths()
        assert np.sum(2.0 ** -lengths) <= 1.0 + 1e-12

    def test_encoded_nbytes_matches_encode(self):
        codec = HuffmanCodec(np.array([7, 3, 2, 1, 1]))
        data = np.array([0, 1, 2, 3, 4, 0, 0])
        assert codec.encoded_nbytes(data) == len(codec.encode(data))

    def test_compresses_skewed_data(self):
        # Hub-heavy multisets (the RRR workload) must beat raw int32.
        rng = np.random.default_rng(1)
        freq = np.array([2000, 1500, 800] + [2] * 197)
        codec = HuffmanCodec(freq)
        data = rng.choice(200, p=freq / freq.sum(), size=500)
        assert len(codec.encode(data)) < 4 * data.size

    def test_rejects_out_of_range_symbol(self):
        codec = HuffmanCodec(np.array([1, 1]))
        with pytest.raises(ParameterError):
            codec.encode(np.array([5]))

    def test_rejects_empty_table(self):
        with pytest.raises(ParameterError):
            HuffmanCodec(np.array([], dtype=np.int64))

    def test_rejects_negative_frequency(self):
        with pytest.raises(ParameterError):
            HuffmanCodec(np.array([3, -1]))

    @given(
        st.lists(st.integers(0, 19), min_size=0, max_size=120),
        st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data, seed):
        rng = np.random.default_rng(seed)
        codec = HuffmanCodec(rng.integers(0, 50, size=20))
        arr = np.asarray(data, dtype=np.int64)
        assert codec.decode(codec.encode(arr)).tolist() == data


class TestDeltaVarint:
    def test_roundtrip(self):
        codec = DeltaVarintCodec()
        data = np.array([5, 100, 3, 1000000])
        out = codec.decode(codec.encode(data))
        assert out.tolist() == sorted(data.tolist())

    def test_empty(self):
        codec = DeltaVarintCodec()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0

    def test_dense_runs_compress_well(self):
        codec = DeltaVarintCodec()
        data = np.arange(1000)
        # Deltas of 1 are single bytes: ~1 byte/entry vs 4 raw.
        assert len(codec.encode(data)) < 1100

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            DeltaVarintCodec().encode(np.array([-1]))

    @given(st.lists(st.integers(0, 10**6), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        codec = DeltaVarintCodec()
        arr = np.asarray(data, dtype=np.int64)
        assert codec.decode(codec.encode(arr)).tolist() == sorted(data)


class TestCompareCodecs:
    def test_reports_all_codecs(self):
        rng = np.random.default_rng(2)
        sets = [rng.integers(0, 100, size=30) for _ in range(10)]
        reports = compare_codecs(sets, 100)
        assert [r.codec for r in reports] == ["raw-int32", "huffman", "delta-varint"]

    def test_raw_ratio_is_one(self):
        sets = [np.arange(10)]
        raw = compare_codecs(sets, 10)[0]
        assert raw.ratio == 1.0

    def test_codecs_save_space_on_skewed_sets(self):
        rng = np.random.default_rng(3)
        # Dense, clustered sets: both codecs must achieve ratio > 1.
        sets = [np.sort(rng.choice(400, size=300, replace=False)) for _ in range(8)]
        reports = {r.codec: r for r in compare_codecs(sets, 400)}
        assert reports["huffman"].ratio > 1.0
        assert reports["delta-varint"].ratio > 1.0

    def test_codec_overhead_recorded(self):
        sets = [np.arange(50)]
        for r in compare_codecs(sets, 50)[1:]:
            assert r.encode_seconds >= 0.0
            assert r.decode_seconds >= 0.0
