"""Tests for the HBMax-style compressed RRR store."""

import numpy as np
import pytest

from repro.errors import OutOfMemoryModelError, ParameterError
from repro.sketch.compressed_store import CompressedRRRStore


def random_sets(n, count, rng, lo=5, hi=60):
    return [
        rng.choice(n, size=rng.integers(lo, hi), replace=False)
        for _ in range(count)
    ]


class TestCompressedStore:
    def test_roundtrip_huffman(self, rng):
        n = 200
        sets = random_sets(n, 50, rng)
        store = CompressedRRRStore(n, codec="huffman", training_sets=8)
        for s in sets:
            store.append(s)
        store.finalize()
        for i, s in enumerate(sets):
            assert np.array_equal(store.get(i), np.sort(s).astype(np.int32))

    def test_roundtrip_varint(self, rng):
        n = 500
        sets = random_sets(n, 30, rng)
        store = CompressedRRRStore(n, codec="delta-varint")
        for s in sets:
            store.append(s)
        for i, s in enumerate(sets):
            assert np.array_equal(store.get(i), np.sort(s).astype(np.int32))

    def test_pending_sets_readable_before_training(self, rng):
        n = 100
        store = CompressedRRRStore(n, codec="huffman", training_sets=50)
        s = rng.choice(n, size=10, replace=False)
        store.append(s)
        assert np.array_equal(store.get(0), np.sort(s).astype(np.int32))

    def test_compression_saves_space_on_skewed_sets(self):
        # Hub-heavy sets (the actual RRR workload shape).
        rng = np.random.default_rng(0)
        n = 1000
        hubs = np.arange(20)
        sets = [
            np.unique(np.concatenate([
                hubs, rng.choice(n, size=30, replace=False)
            ]))
            for _ in range(60)
        ]
        store = CompressedRRRStore(n, codec="huffman", training_sets=16)
        for s in sets:
            store.append(s)
        store.finalize()
        assert store.compression_ratio > 1.0

    def test_codec_overhead_recorded(self, rng):
        n = 300
        store = CompressedRRRStore(n, codec="delta-varint")
        for s in random_sets(n, 20, rng):
            store.append(s)
        for i in range(20):
            store.get(i)
        # The paper's critique: compression pays real codec time.
        assert store.encode_seconds > 0.0
        assert store.decode_seconds > 0.0

    def test_budget_enforced_on_compressed_size(self, rng):
        n = 400
        store = CompressedRRRStore(
            n, codec="delta-varint", budget_bytes=200
        )
        with pytest.raises(OutOfMemoryModelError):
            for s in random_sets(n, 50, rng):
                store.append(s)

    def test_to_flat(self, rng):
        n = 150
        sets = random_sets(n, 12, rng)
        store = CompressedRRRStore(n, codec="huffman", training_sets=4)
        for s in sets:
            store.append(s)
        flat = store.to_flat()
        assert len(flat) == 12
        assert np.array_equal(flat.get(3), np.sort(sets[3]).astype(np.int32))

    def test_sizes(self, rng):
        n = 100
        store = CompressedRRRStore(n, codec="delta-varint")
        store.append(np.arange(7))
        store.append(np.arange(3))
        assert store.sizes().tolist() == [7, 3]

    def test_rejects_unknown_codec(self):
        with pytest.raises(ParameterError):
            CompressedRRRStore(10, codec="zstd")

    def test_finalize_empty_rejected(self):
        with pytest.raises(ParameterError):
            CompressedRRRStore(10, codec="huffman").finalize()

    def test_selection_on_decoded_store_matches_plain(self, rng):
        # End-to-end: greedy over the compressed store's decode equals
        # greedy over the plain store.
        from repro.core.selection import efficient_select
        from repro.sketch.store import FlatRRRStore

        n = 120
        sets = random_sets(n, 40, rng)
        plain = FlatRRRStore(n, sort_sets=True)
        comp = CompressedRRRStore(n, codec="huffman", training_sets=10)
        for s in sets:
            plain.append(s)
            comp.append(s)
        a = efficient_select(plain, 5)
        b = efficient_select(comp.to_flat(), 5)
        assert np.array_equal(a.seeds, b.seeds)
