"""Tests for the OPIM-C online algorithm."""

import math

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams
from repro.core.opim import (
    OPIMResult,
    _opt_upper,
    _sigma_lower,
    coverage_of_seeds,
    run_opim,
)
from repro.errors import ParameterError
from repro.sketch.store import FlatRRRStore


class TestBounds:
    def test_sigma_lower_below_empirical(self):
        # The lower bound must sit below the plug-in estimate n*cov/theta.
        n, theta, cov, a = 1000, 500, 300, 5.0
        assert _sigma_lower(n, theta, cov, a) < n * cov / theta

    def test_opt_upper_above_empirical(self):
        n, theta, cov, a = 1000, 500, 300, 5.0
        assert _opt_upper(n, theta, cov, a) > n * cov / theta

    def test_bounds_tighten_with_samples(self):
        # Same coverage *rate*, more samples => tighter interval.
        n, a = 1000, 5.0
        gap_small = _opt_upper(n, 100, 60, a) - _sigma_lower(n, 100, 60, a)
        gap_big = _opt_upper(n, 10_000, 6000, a) - _sigma_lower(n, 10_000, 6000, a)
        assert gap_big < gap_small

    def test_sigma_lower_nonnegative(self):
        assert _sigma_lower(1000, 100, 0, 10.0) >= -1e-9 * 1000
        assert _sigma_lower(1000, 0, 0, 10.0) == 0.0

    def test_zero_theta_upper_is_n(self):
        assert _opt_upper(1000, 0, 0, 5.0) == 1000.0


class TestCoverageOfSeeds:
    def test_exact_count(self):
        store = FlatRRRStore(10)
        store.extend([np.array([1, 2]), np.array([3]), np.array([2, 3])])
        assert coverage_of_seeds(store, np.array([2])) == 2
        assert coverage_of_seeds(store, np.array([1, 3])) == 3
        assert coverage_of_seeds(store, np.array([9])) == 0


class TestRunOpim:
    @pytest.fixture(scope="class")
    def amazon(self):
        from repro.graph.datasets import load_dataset

        return load_dataset("amazon", model="IC", seed=0)

    def test_returns_k_seeds(self, amazon):
        res = run_opim(amazon, IMMParams(k=8, theta_cap=2000, seed=1))
        assert res.seeds.size == 8
        assert len(set(res.seeds.tolist())) == 8

    def test_certifies_at_target(self, amazon):
        params = IMMParams(k=8, epsilon=0.5, theta_cap=4000, seed=1)
        res = run_opim(amazon, params)
        assert res.certified
        target = 1.0 - 1.0 / math.e - params.epsilon
        assert res.approx_guarantee >= target

    def test_uses_fewer_samples_than_imm(self, amazon):
        params = IMMParams(k=8, epsilon=0.5, theta_cap=4000, seed=1)
        opim = run_opim(amazon, params)
        imm = EfficientIMM(amazon).run(params)
        assert opim.certified
        # The §VI claim: early termination when coverage is sufficient.
        assert opim.num_rrrsets < imm.num_rrrsets

    def test_bounds_bracket_truth(self, amazon):
        from repro.diffusion import estimate_spread, get_model

        params = IMMParams(k=8, epsilon=0.5, theta_cap=4000, seed=2)
        res = run_opim(amazon, params)
        model = get_model("IC", amazon)
        mc = estimate_spread(model, res.seeds, num_samples=120, seed=3)
        assert res.spread_lower_bound <= mc.mean + 4 * mc.stderr
        assert res.opt_upper_bound >= mc.mean - 4 * mc.stderr

    def test_determinism(self, amazon):
        params = IMMParams(k=5, theta_cap=1000, seed=4)
        a = run_opim(amazon, params)
        b = run_opim(amazon, params)
        assert np.array_equal(a.seeds, b.seeds)
        assert a.num_rrrsets == b.num_rrrsets

    def test_cap_exhaustion_uncertified(self, amazon):
        # epsilon tiny + tight cap: cannot certify, must say so.
        res = run_opim(
            amazon, IMMParams(k=8, epsilon=0.05, theta_cap=128, seed=5)
        )
        assert not res.certified
        assert res.seeds.size == 8

    def test_times_recorded(self, amazon):
        res = run_opim(amazon, IMMParams(k=5, theta_cap=1000, seed=6))
        assert "Generate_RRRsets" in res.times.stages
        assert "Bound_Estimation" in res.times.stages

    def test_rejects_bad_delta(self, amazon):
        with pytest.raises(ParameterError):
            run_opim(amazon, IMMParams(k=3, theta_cap=100), delta=1.5)

    def test_rejects_k_above_n(self, amazon):
        with pytest.raises(ParameterError):
            run_opim(amazon, IMMParams(k=amazon.num_vertices + 1, theta_cap=100))

    def test_quality_close_to_imm(self, amazon):
        from repro.diffusion import estimate_spread, get_model

        params = IMMParams(k=8, epsilon=0.5, theta_cap=4000, seed=7)
        opim = run_opim(amazon, params)
        imm = EfficientIMM(amazon).run(params)
        model = get_model("IC", amazon)
        s_opim = estimate_spread(model, opim.seeds, num_samples=80, seed=8).mean
        s_imm = estimate_spread(model, imm.seeds, num_samples=80, seed=8).mean
        assert s_opim >= 0.85 * s_imm
