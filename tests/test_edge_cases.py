"""Edge-case and failure-injection tests across module boundaries.

Everything here is about the awkward inputs: single-vertex graphs, k = n,
epsilon at the domain edge, empty structures, corrupted blobs — the paths a
production library must survive.
"""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams, RipplesIMM
from repro.core.selection import efficient_select, ripples_select
from repro.diffusion.base import get_model
from repro.errors import ParameterError, ReproError
from repro.graph.builder import from_edge_array
from repro.sketch.store import FlatRRRStore

from conftest import make_graph


class TestDegenerateGraphs:
    def test_single_vertex_imm(self):
        g = make_graph([], n=1)
        res = EfficientIMM(g).run(IMMParams(k=1, theta_cap=50, seed=0))
        assert res.seeds.tolist() == [0]
        assert res.coverage_fraction == 1.0

    def test_two_vertices_no_edges(self):
        g = make_graph([], n=2)
        res = EfficientIMM(g).run(IMMParams(k=2, theta_cap=50, seed=0))
        assert sorted(res.seeds.tolist()) == [0, 1]

    def test_k_equals_n(self):
        g = make_graph([(0, 1, 0.5), (1, 2, 0.5)], n=3)
        res = EfficientIMM(g).run(IMMParams(k=3, theta_cap=100, seed=0))
        assert sorted(res.seeds.tolist()) == [0, 1, 2]

    def test_k_above_n_rejected(self):
        g = make_graph([(0, 1, 0.5)], n=2)
        with pytest.raises(ReproError):
            EfficientIMM(g).run(IMMParams(k=3, theta_cap=10, seed=0))

    def test_all_zero_probabilities(self):
        g = make_graph([(0, 1, 0.0), (1, 2, 0.0), (2, 0, 0.0)], n=3)
        res = EfficientIMM(g).run(IMMParams(k=1, theta_cap=100, seed=0))
        # No edge ever fires: every RRR set is a singleton; the most
        # frequent root wins and the estimate is ~1 vertex.
        assert res.spread_estimate <= g.num_vertices

    def test_self_influence_only_lt(self):
        g = make_graph([(0, 1, 0.0)], n=2)
        from repro.graph.weights import assign_lt_weights

        weighted = assign_lt_weights(g, seed=0)
        res = EfficientIMM(weighted).run(
            IMMParams(k=1, model="LT", theta_cap=100, seed=0)
        )
        assert res.seeds.size == 1

    def test_dense_complete_graph(self):
        edges = [(i, j, 1.0) for i in range(8) for j in range(8) if i != j]
        g = make_graph(edges, n=8)
        res = EfficientIMM(g).run(IMMParams(k=2, theta_cap=100, seed=0))
        # Probability-1 complete graph: one seed reaches everything.
        assert res.coverage_fraction == 1.0
        assert res.spread_estimate == 8.0


class TestEpsilonExtremes:
    def test_epsilon_near_one(self, amazon_ic):
        res = EfficientIMM(amazon_ic).run(
            IMMParams(k=3, epsilon=0.99, theta_cap=5000, seed=0)
        )
        assert res.seeds.size == 3
        # Loose epsilon needs few samples: the cap must not bind.
        assert not getattr(res, "theta_capped", True)

    def test_tight_epsilon_needs_more_samples(self, amazon_ic):
        loose = EfficientIMM(amazon_ic).run(
            IMMParams(k=3, epsilon=0.9, theta_cap=100_000, seed=0)
        )
        tight = EfficientIMM(amazon_ic).run(
            IMMParams(k=3, epsilon=0.45, theta_cap=100_000, seed=0)
        )
        assert tight.theta > loose.theta

    def test_epsilon_domain(self):
        with pytest.raises(ValueError):
            IMMParams(epsilon=0.0)
        IMMParams(epsilon=1.0)  # boundary allowed


class TestSelectionDegenerates:
    def test_all_identical_sets(self):
        s = FlatRRRStore(6, sort_sets=True)
        for _ in range(10):
            s.append(np.array([2, 4]))
        res = efficient_select(s, 2)
        assert res.seeds[0] == 2  # lowest id of the tie
        assert res.coverage_fraction == 1.0

    def test_all_singleton_sets(self):
        s = FlatRRRStore(5, sort_sets=True)
        for v in [0, 1, 1, 2, 2, 2]:
            s.append(np.array([v]))
        res = efficient_select(s, 3)
        assert res.seeds.tolist()[:3] == [2, 1, 0]

    def test_sets_larger_than_k_vertices(self):
        s = FlatRRRStore(4, sort_sets=True)
        s.append(np.array([0, 1, 2, 3]))
        res = ripples_select(s, 4)
        assert sorted(res.seeds.tolist()) == [0, 1, 2, 3]

    def test_one_empty_set_among_real_ones(self):
        s = FlatRRRStore(4, sort_sets=True)
        s.append(np.array([], dtype=np.int32))
        s.append(np.array([1]))
        res = efficient_select(s, 1)
        assert res.seeds[0] == 1
        assert res.coverage_fraction == 0.5  # the empty set is uncoverable


class TestCorruptedInputs:
    def test_huffman_decode_truncated_blob(self):
        from repro.sketch.compress import HuffmanCodec

        codec = HuffmanCodec(np.array([5, 3, 2, 1]))
        blob = codec.encode(np.array([0, 1, 2, 3, 0, 1]))
        with pytest.raises((ParameterError, IndexError)):
            codec.decode(blob[:5] + b"")

    def test_npz_load_of_garbage_file(self, tmp_path):
        from repro.graph.io import load_npz

        p = tmp_path / "junk.npz"
        p.write_bytes(b"this is not a zip archive")
        with pytest.raises(Exception):
            load_npz(p)

    def test_snap_reader_binary_garbage(self, tmp_path):
        from repro.errors import GraphFormatError
        from repro.graph.io import read_snap_edgelist

        p = tmp_path / "junk.txt"
        p.write_text("\x00\x01 \x02garbage\n")
        with pytest.raises(GraphFormatError):
            read_snap_edgelist(p)


class TestNumericalRobustness:
    def test_probability_exactly_one_and_zero(self, rng):
        g = make_graph([(0, 1, 1.0), (1, 2, 0.0)], n=3)
        model = get_model("IC", g)
        for _ in range(20):
            rrr = model.reverse_sample(2, rng)
            assert rrr.tolist() == [2]
            rrr = model.reverse_sample(1, rng)
            assert sorted(rrr.tolist()) == [0, 1]

    def test_huge_theta_cap_is_fine(self, amazon_ic):
        # A cap far above what the run needs must behave like no cap.
        res = EfficientIMM(amazon_ic).run(
            IMMParams(k=2, epsilon=0.99, theta_cap=10**9, seed=0)
        )
        assert res.seeds.size == 2

    def test_martingale_large_n_no_overflow(self):
        from repro.core.martingale import MartingaleSchedule

        s = MartingaleSchedule.for_run(41_652_230, 50, 0.5, 1.0)  # Twitter7
        assert np.isfinite(s.lambda_star_)
        assert s.theta_final(s.lower_bound(0.6)) > 0

    def test_frameworks_agree_on_degenerate_graph(self):
        g = make_graph([(0, 1, 0.7), (2, 3, 0.7)], n=4)
        params = IMMParams(k=2, theta_cap=300, seed=1)
        a = EfficientIMM(g).run(params)
        b = RipplesIMM(g).run(params)
        assert np.array_equal(a.seeds, b.seeds)
