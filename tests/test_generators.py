"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph import generators as gen
from repro.graph.builder import from_edge_array


class TestErdosRenyi:
    def test_edge_count(self):
        src, dst = gen.erdos_renyi(100, 500, seed=1)
        assert src.size == dst.size == 500

    def test_determinism(self):
        a = gen.erdos_renyi(50, 200, seed=7)
        b = gen.erdos_renyi(50, 200, seed=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = gen.erdos_renyi(50, 200, seed=7)
        b = gen.erdos_renyi(50, 200, seed=8)
        assert not np.array_equal(a[0], b[0])

    def test_ids_in_range(self):
        src, dst = gen.erdos_renyi(10, 100, seed=2)
        assert src.min() >= 0 and src.max() < 10
        assert dst.min() >= 0 and dst.max() < 10

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(0, 10)


class TestRmat:
    def test_vertex_space(self):
        src, dst = gen.rmat(6, 300, seed=3)
        assert src.max() < 64 and dst.max() < 64

    def test_determinism(self):
        a = gen.rmat(8, 1000, seed=11)
        b = gen.rmat(8, 1000, seed=11)
        assert np.array_equal(a[0], b[0])

    def test_skewed_degrees(self):
        # Graph500 parameters must produce heavy-tailed out-degrees.
        src, dst = gen.rmat(10, 8000, seed=5)
        g = from_edge_array(src, dst, num_vertices=1024)
        degs = np.asarray(g.out_degree())
        assert degs.max() > 6 * max(degs.mean(), 1)

    def test_uniform_quadrants_not_skewed(self):
        src, _ = gen.rmat(10, 8000, a=0.25, b=0.25, c=0.25, seed=5)
        counts = np.bincount(src, minlength=1024)
        assert counts.max() < 10 * max(counts.mean(), 1)

    def test_rejects_invalid_quadrants(self):
        with pytest.raises(ParameterError):
            gen.rmat(5, 10, a=0.9, b=0.2, c=0.2)


class TestBarabasiAlbert:
    def test_edge_count(self):
        src, dst = gen.barabasi_albert(100, 3, seed=1)
        assert src.size == (100 - 4) * 3

    def test_new_nodes_attach_to_older(self):
        src, dst = gen.barabasi_albert(50, 2, seed=2)
        assert np.all(dst < src)

    def test_preferential_attachment_creates_hubs(self):
        src, dst = gen.barabasi_albert(800, 2, seed=3)
        g = from_edge_array(src, dst, num_vertices=800, make_undirected=True)
        degs = np.asarray(g.out_degree())
        assert degs.max() > 5 * degs.mean()

    def test_rejects_m_ge_n(self):
        with pytest.raises(ParameterError):
            gen.barabasi_albert(5, 5)

    def test_determinism(self):
        a = gen.barabasi_albert(60, 2, seed=9)
        b = gen.barabasi_albert(60, 2, seed=9)
        assert np.array_equal(a[1], b[1])


class TestWattsStrogatz:
    def test_edge_count(self):
        src, dst = gen.watts_strogatz(40, 4, 0.0, seed=1)
        assert src.size == 160

    def test_zero_beta_is_ring_lattice(self):
        src, dst = gen.watts_strogatz(10, 2, 0.0, seed=1)
        expected = {(u, (u + o) % 10) for u in range(10) for o in (1, 2)}
        assert set(zip(src.tolist(), dst.tolist())) == expected

    def test_full_beta_rewires_everything(self):
        src, dst = gen.watts_strogatz(200, 2, 1.0, seed=4)
        lattice = ((dst - src) % 200 <= 2) & ((dst - src) % 200 >= 1)
        # Random endpoints rarely coincide with the lattice neighbours.
        assert lattice.mean() < 0.1

    def test_rejects_k_ge_n(self):
        with pytest.raises(ParameterError):
            gen.watts_strogatz(4, 4, 0.5)


class TestPlantedPartition:
    def test_edge_counts(self):
        src, dst = gen.planted_partition(100, 10, 300, 50, seed=1)
        assert src.size == 350

    def test_intra_edges_stay_in_community(self):
        src, dst = gen.planted_partition(100, 10, 400, 0, seed=2)
        assert np.all(src // 10 == dst // 10)

    def test_last_community_absorbs_remainder(self):
        # 103 vertices, 10 communities: ids 100-102 must be reachable.
        src, dst = gen.planted_partition(103, 10, 5000, 0, seed=3)
        assert max(src.max(), dst.max()) >= 100

    def test_rejects_more_communities_than_vertices(self):
        with pytest.raises(ParameterError):
            gen.planted_partition(5, 10, 10, 10)


class TestRandomGeometric:
    def test_edges_are_short(self):
        src, dst = gen.random_geometric(300, 0.1, seed=1)
        # Regenerate the points to verify the distance bound.
        rng = np.random.default_rng(1)
        pts = rng.random((300, 2))
        d = np.linalg.norm(pts[src] - pts[dst], axis=1)
        assert np.all(d <= 0.1 + 1e-12)

    def test_symmetric_output(self):
        src, dst = gen.random_geometric(200, 0.12, seed=2)
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_tiny_radius_no_edges(self):
        src, dst = gen.random_geometric(20, 1e-6, seed=3)
        assert src.size == 0

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ParameterError):
            gen.random_geometric(10, 0.0)
