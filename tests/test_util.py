"""Tests for the shared utility helpers."""

import time

import numpy as np
import pytest

from repro._util import (
    StageTimes,
    Timer,
    as_rng,
    check_fraction,
    check_positive_int,
    human_bytes,
    human_time,
    log2ceil,
    spawn_rngs,
)


class TestRng:
    def test_as_rng_from_int(self):
        a, b = as_rng(5), as_rng(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_spawn_independent(self):
        rngs = spawn_rngs(7, 4)
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 4

    def test_spawn_deterministic(self):
        a = [r.integers(0, 100) for r in spawn_rngs(3, 3)]
        b = [r.integers(0, 100) for r in spawn_rngs(3, 3)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(0), 2)
        assert len(rngs) == 2


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_timer_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.005)
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.009

    def test_stage_times(self):
        st = StageTimes()
        with st.measure("a"):
            time.sleep(0.002)
        st.add("b", 1.0)
        assert st.stages["b"] == 1.0
        assert st.total > 1.0
        assert abs(sum(st.fractions().values()) - 1.0) < 1e-9

    def test_stage_times_empty_fractions(self):
        st = StageTimes()
        st.add("a", 0.0)
        assert st.fractions() == {"a": 0.0}


class TestFormatting:
    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(1536) == "1.5 KiB"
        assert "GiB" in human_bytes(3 * 1024**3)

    def test_human_time(self):
        assert "us" in human_time(5e-6)
        assert "ms" in human_time(0.05)
        assert human_time(2.0) == "2.00 s"
        assert human_time(150) == "2m30s"


class TestValidators:
    def test_positive_int_ok(self):
        assert check_positive_int("x", 5) == 5

    def test_positive_int_rejects(self):
        for bad in (0, -1, 2.5):
            with pytest.raises(ValueError):
                check_positive_int("x", bad)

    def test_fraction_ok(self):
        assert check_fraction("x", 0.5) == 0.5
        assert check_fraction("x", 1.0) == 1.0
        assert check_fraction("x", 0.0, open_left=False) == 0.0

    def test_fraction_rejects(self):
        with pytest.raises(ValueError):
            check_fraction("x", 0.0)
        with pytest.raises(ValueError):
            check_fraction("x", 1.1)

    def test_log2ceil(self):
        assert log2ceil(1) == 0
        assert log2ceil(2) == 1
        assert log2ceil(1000) == 10


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import (
            DatasetError,
            OutOfMemoryModelError,
            ParameterError,
            ReproError,
        )

        assert issubclass(DatasetError, ReproError)
        assert issubclass(ParameterError, (ReproError, ValueError))
        err = OutOfMemoryModelError(200, 100)
        assert isinstance(err, ReproError)
        assert "200" in str(err) and "100" in str(err)
