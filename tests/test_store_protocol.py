"""RRRStore protocol conformance, the drift guard, and make_store.

Three layers of contract enforcement:

- every registered implementation satisfies the runtime-checkable
  :class:`~repro.sketch.protocol.RRRStore` protocol *behaviourally*
  (same answers for the same sets, not just matching names);
- the drift guard: a store class may only expose public surface that is
  either in the protocol or declared in
  :data:`~repro.sketch.protocol.STORE_EXTRAS` — growing a store's API
  requires touching the registry;
- :func:`~repro.sketch.protocol.make_store` builds every kind, and the
  pre-redesign positional form warns with the ``"repro execution API: "``
  prefix pyproject.toml escalates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sketch.compressed_store import CompressedRRRStore
from repro.sketch.protocol import (
    PROTOCOL_METHODS,
    STORE_EXTRAS,
    STORE_KINDS,
    RRRStore,
    allowed_surface,
    make_store,
    public_surface,
    store_implementations,
)
from repro.sketch.store import (
    AdaptiveRRRStore,
    FlatRRRStore,
    PartitionedRRRStore,
    content_fingerprint,
)

N = 40


def _sample_sets(rng=None):
    rng = rng or np.random.default_rng(7)
    return [
        np.sort(
            rng.choice(N, size=int(rng.integers(1, 9)), replace=False)
        ).astype(np.int32)
        for _ in range(25)
    ]


def _instances():
    """One filled instance per registered implementation (global order
    identical across all of them)."""
    sets = _sample_sets()
    out = []
    for cls in store_implementations():
        if cls.__name__ == "SharedFlatRRRStore":
            continue  # exercised via the shm fixture below
        if cls is PartitionedRRRStore:
            store = make_store("partitioned", num_vertices=N, num_workers=3, sort_sets=True)
        elif cls is AdaptiveRRRStore:
            store = make_store("adaptive", num_vertices=N)
        elif cls is CompressedRRRStore:
            store = make_store("compressed", num_vertices=N)
        else:
            store = make_store("flat", num_vertices=N, sort_sets=True)
        store.extend(sets)
        out.append(store)
    return sets, out


# ----------------------------------------------------------------- conformance
def test_every_implementation_satisfies_the_protocol():
    _, stores = _instances()
    assert len(stores) >= 4
    for store in stores:
        assert isinstance(store, RRRStore), type(store).__name__


def test_shared_view_satisfies_the_protocol():
    shm = pytest.importorskip("repro.shm")
    sets = _sample_sets()
    flat = make_store("flat", num_vertices=N, sort_sets=True)
    flat.extend(sets)
    with shm.SegmentManager(prefix="tsp") as mgr:
        view = mgr.attach_store(mgr.publish_store(flat))
        assert isinstance(view, RRRStore)
        assert view.fingerprint() == flat.fingerprint()
        view.detach()


def test_implementations_agree_behaviourally():
    sets, stores = _instances()
    ref = stores[0]
    expected_fp = content_fingerprint(
        N, ref.sizes(), np.concatenate([ref.get(i) for i in range(len(ref))])
    )
    for store in stores:
        name = type(store).__name__
        assert len(store) == len(sets), name
        assert store.num_vertices == N, name
        np.testing.assert_array_equal(store.sizes(), ref.sizes(), err_msg=name)
        np.testing.assert_array_equal(
            store.vertex_counts(), ref.vertex_counts(), err_msg=name
        )
        for i in (0, len(sets) // 2, len(sets) - 1):
            np.testing.assert_array_equal(
                np.sort(store.get(i)), np.sort(ref.get(i)), err_msg=name
            )
        for v in (0, 13, N - 1):
            np.testing.assert_array_equal(
                store.sets_containing(v), ref.sets_containing(v), err_msg=name
            )
        assert store.fingerprint() == expected_fp, name
        assert store.nbytes() > 0, name
        it = list(iter(store))
        assert len(it) == len(sets), name


def test_replace_sets_consistent_across_implementations():
    sets, stores = _instances()
    rng = np.random.default_rng(11)
    idx = np.array([2, 9, 17], dtype=np.int64)
    new_sets = [
        np.sort(rng.choice(N, size=4, replace=False)).astype(np.int32)
        for _ in idx
    ]
    ref_fp = None
    for store in stores:
        name = type(store).__name__
        store.replace_sets(idx, [s.copy() for s in new_sets])
        assert len(store) == len(sets), name
        fp = store.fingerprint()
        if ref_fp is None:
            ref_fp = fp
        assert fp == ref_fp, name


def test_trim_preserves_content():
    _, stores = _instances()
    for store in stores:
        fp = store.fingerprint()
        trimmed = store.trim()
        assert trimmed.fingerprint() == fp, type(store).__name__


# ----------------------------------------------------------------- drift guard
def test_no_store_exposes_unregistered_public_surface():
    """The drift guard: every public method/property is either protocol
    surface or a registered deliberate extra."""
    for cls in store_implementations():
        extra = public_surface(cls) - allowed_surface(cls)
        assert not extra, (
            f"{cls.__name__} grew unregistered public surface {sorted(extra)}; "
            "add it to PROTOCOL_METHODS or STORE_EXTRAS deliberately"
        )


def test_drift_guard_catches_a_new_method():
    class Rogue(FlatRRRStore):
        def surprise(self):  # pragma: no cover - never called
            return 42

    assert "surprise" in public_surface(Rogue) - allowed_surface(Rogue)


def test_registry_covers_all_implementations():
    names = {cls.__name__ for cls in store_implementations()}
    assert {
        "FlatRRRStore",
        "AdaptiveRRRStore",
        "PartitionedRRRStore",
        "CompressedRRRStore",
        "SharedFlatRRRStore",
    } <= names
    assert "append" in PROTOCOL_METHODS
    assert STORE_EXTRAS[FlatRRRStore]  # non-empty: offsets/vertices/...


# --------------------------------------------------------------------- factory
def test_make_store_builds_every_kind():
    assert make_store("flat", num_vertices=N).num_vertices == N
    assert isinstance(
        make_store("adaptive", num_vertices=N), AdaptiveRRRStore
    )
    part = make_store("partitioned", num_vertices=N, num_workers=4)
    assert part.num_workers == 4
    assert isinstance(
        make_store("compressed", num_vertices=N), CompressedRRRStore
    )
    assert set(STORE_KINDS) == {
        "flat", "adaptive", "partitioned", "compressed", "shared",
    }


def test_make_store_flat_rebuild_from_arrays():
    flat = make_store("flat", num_vertices=N, sort_sets=True)
    flat.extend(_sample_sets())
    rebuilt = make_store(
        "flat",
        num_vertices=N,
        offsets=flat.offsets,
        vertices=flat.vertices,
        sort_sets=True,
    )
    assert rebuilt.fingerprint() == flat.fingerprint()


def test_make_store_rejects_unknown_kind_and_bad_options():
    with pytest.raises(ParameterError, match="unknown store kind"):
        make_store("columnar", num_vertices=N)
    with pytest.raises(ParameterError, match="requires num_vertices"):
        make_store("flat")
    with pytest.raises(ParameterError, match="requires num_workers"):
        make_store("partitioned", num_vertices=N)
    with pytest.raises(ParameterError, match="offsets and vertices together"):
        make_store("flat", num_vertices=N, offsets=np.zeros(1, dtype=np.int64))
    with pytest.raises(ParameterError, match="exactly one of"):
        make_store("shared")


def test_make_store_positional_form_warns_deprecation():
    with pytest.warns(DeprecationWarning, match="repro execution API: "):
        store = make_store("flat", N, sort_sets=True)
    assert store.num_vertices == N
    with pytest.raises(ParameterError, match="both positionally and by keyword"):
        make_store("flat", N, num_vertices=N)
    with pytest.raises(ParameterError, match="at most one positional"):
        make_store("flat", N, True)


def test_make_store_shared_attaches_by_handle_name_and_manager():
    from repro import shm

    flat = make_store("flat", num_vertices=N, sort_sets=True)
    flat.extend(_sample_sets())
    with shm.SegmentManager(prefix="tsf") as mgr:
        handle = mgr.publish_store(flat)
        by_handle = make_store("shared", handle=handle)
        by_name = make_store("shared", name=handle.name)
        by_mgr = make_store("shared", handle=handle, manager=mgr)
        try:
            for view in (by_handle, by_name, by_mgr):
                assert view.fingerprint() == flat.fingerprint()
        finally:
            for view in (by_handle, by_name, by_mgr):
                view.detach()
        assert mgr.leaked() == []
