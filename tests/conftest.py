"""Shared fixtures: canonical small graphs and cached replica datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph


def make_graph(edges, n=None, probs=None) -> CSRGraph:
    """Build a CSRGraph from a list of (u, v) or (u, v, p) tuples."""
    if edges and len(edges[0]) == 3:
        src, dst, p = zip(*edges)
        p = np.asarray(p, dtype=np.float64)
    else:
        src, dst = zip(*edges) if edges else ((), ())
        p = probs
    return from_edge_array(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        p,
        num_vertices=n,
    )


@pytest.fixture
def line_graph() -> CSRGraph:
    """0 -> 1 -> 2 -> 3 -> 4, all probabilities 1."""
    return make_graph([(i, i + 1, 1.0) for i in range(4)], n=5)


@pytest.fixture
def cycle_graph() -> CSRGraph:
    """Directed 6-cycle, all probabilities 1."""
    return make_graph([(i, (i + 1) % 6, 1.0) for i in range(6)], n=6)


@pytest.fixture
def star_graph() -> CSRGraph:
    """Hub 0 -> leaves 1..8, all probabilities 1."""
    return make_graph([(0, i, 1.0) for i in range(1, 9)], n=9)


@pytest.fixture
def two_triangles() -> CSRGraph:
    """Two disjoint directed triangles {0,1,2} and {3,4,5}."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    return make_graph([(u, v, 1.0) for u, v in edges], n=6)


@pytest.fixture
def diamond_graph() -> CSRGraph:
    """0 -> {1, 2} -> 3 with mixed probabilities."""
    return make_graph(
        [(0, 1, 1.0), (0, 2, 0.5), (1, 3, 1.0), (2, 3, 0.25)], n=4
    )


@pytest.fixture
def empty_graph() -> CSRGraph:
    return make_graph([], n=0)


@pytest.fixture
def isolated_graph() -> CSRGraph:
    """Five vertices, zero edges."""
    return make_graph([], n=5)


@pytest.fixture(scope="session")
def amazon_ic() -> CSRGraph:
    """The amazon replica, IC-weighted (session-cached: generation costs)."""
    from repro.graph.datasets import load_dataset

    return load_dataset("amazon", model="IC", seed=0)


@pytest.fixture(scope="session")
def skitter_ic() -> CSRGraph:
    from repro.graph.datasets import load_dataset

    return load_dataset("skitter", model="IC", seed=0)


@pytest.fixture(scope="session")
def amazon_lt() -> CSRGraph:
    from repro.graph.datasets import load_dataset

    return load_dataset("amazon", model="LT", seed=0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
