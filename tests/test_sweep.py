"""Tests for the artifact-style sweep runner and CSV extraction."""

import json

import pytest

from repro.bench.sweep import (
    DEFAULT_THREAD_SWEEP,
    RunLog,
    extract_results,
    log_dir_name,
    run_sweep,
)
from repro.errors import ParameterError


class TestLogDirName:
    def test_matches_artifact_layout(self):
        assert log_dir_name("IC", "EfficientIMM") == "strong-scaling-logs-ic-eimm"
        assert log_dir_name("LT", "Ripples") == "strong-scaling-logs-lt-ripples"

    def test_unknown_framework(self):
        with pytest.raises(ParameterError):
            log_dir_name("IC", "curipples")


class TestRunLog:
    def test_roundtrip(self, tmp_path):
        log = RunLog(
            dataset="skitter", model="IC", framework="Ripples",
            num_threads=8, k=10, epsilon=0.5, theta=100,
            total_time_s=1.25, generate_rrrsets_s=1.0,
            find_most_influential_s=0.2, other_s=0.05,
            seeds=[1, 2, 3], machine="perlmutter-epyc7763", timestamp=0.0,
        )
        p = tmp_path / "log.json"
        log.write(p)
        assert RunLog.read(p) == log

    def test_json_is_plain(self, tmp_path):
        log = RunLog(
            dataset="a", model="IC", framework="Ripples", num_threads=1,
            k=1, epsilon=0.5, theta=1, total_time_s=0.0,
            generate_rrrsets_s=0.0, find_most_influential_s=0.0,
            other_s=0.0, seeds=[0], machine="m", timestamp=0.0,
        )
        p = tmp_path / "log.json"
        log.write(p)
        payload = json.loads(p.read_text())
        assert payload["dataset"] == "a"
        assert isinstance(payload["seeds"], list)


@pytest.fixture(scope="module")
def sweep_output(tmp_path_factory):
    out = tmp_path_factory.mktemp("sweep")
    written = run_sweep(
        out,
        datasets=["skitter"],
        models=("IC",),
        thread_sweep=(4, 8, 16),
        k=10,
        seed=1,
    )
    return out, written


class TestRunSweep:
    def test_writes_expected_files(self, sweep_output):
        out, written = sweep_output
        # 1 dataset x 1 model x 2 frameworks x 3 thread counts.
        assert len(written) == 6
        assert (out / "strong-scaling-logs-ic-eimm" / "skitter-t8.json").exists()
        assert (out / "strong-scaling-logs-ic-ripples" / "skitter-t16.json").exists()

    def test_log_contents(self, sweep_output):
        out, _ = sweep_output
        log = RunLog.read(
            out / "strong-scaling-logs-ic-eimm" / "skitter-t4.json"
        )
        assert log.framework == "EfficientIMM"
        assert log.num_threads == 4
        assert log.total_time_s > 0
        assert log.total_time_s == pytest.approx(
            log.generate_rrrsets_s + log.find_most_influential_s + log.other_s
        )
        assert len(log.seeds) == 10

    def test_seeds_same_across_frameworks(self, sweep_output):
        out, _ = sweep_output
        a = RunLog.read(out / "strong-scaling-logs-ic-eimm" / "skitter-t4.json")
        b = RunLog.read(
            out / "strong-scaling-logs-ic-ripples" / "skitter-t4.json"
        )
        assert a.seeds == b.seeds

    def test_default_sweep_is_artifact_schedule(self):
        assert DEFAULT_THREAD_SWEEP == (4, 8, 16, 32, 64, 128)


class TestExtractResults:
    def test_produces_csv(self, sweep_output):
        out, _ = sweep_output
        paths = extract_results(out, models=("IC",))
        csv_path = paths["IC"]
        assert csv_path.name == "speedup_ic.csv"
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == (
            "Dataset,Speedup,EfficientIMM Time (s),Ripples Time (s),"
            "Ripples Best #Threads,EfficientIMM Best #Threads"
        )
        assert lines[1].startswith("skitter,")

    def test_speedup_consistent_with_times(self, sweep_output):
        import csv as csvmod

        out, _ = sweep_output
        csv_path = extract_results(out, models=("IC",))["IC"]
        with open(csv_path) as fh:
            row = next(csvmod.DictReader(fh))
        speedup = float(row["Speedup"])
        ratio = float(row["Ripples Time (s)"]) / float(
            row["EfficientIMM Time (s)"]
        )
        assert speedup == pytest.approx(ratio, abs=0.01)

    def test_missing_logs_returns_empty(self, tmp_path):
        assert extract_results(tmp_path) == {}
