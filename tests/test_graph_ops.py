"""Tests for graph transformations (subgraphs, components, k-cores)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi
from repro.graph.ops import core_numbers, induced_subgraph, k_core, largest_component

from conftest import make_graph


def graph_with_self_loops() -> CSRGraph:
    """Triangle 0->1->2->0 plus self-loops on 0 and 2, built directly as CSR
    (the builder drops self-loops; external CSR data may still carry them)."""
    indptr = np.array([0, 2, 3, 5], dtype=np.int64)
    indices = np.array([0, 1, 2, 0, 2], dtype=np.int32)
    probs = np.full(5, 0.5, dtype=np.float64)
    return CSRGraph(3, indptr, indices, probs)


class TestInducedSubgraph:
    def test_keeps_internal_edges(self, line_graph):
        sub, labels = induced_subgraph(line_graph, np.array([1, 2, 3]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # 1->2 and 2->3
        assert labels.tolist() == [1, 2, 3]

    def test_drops_boundary_edges(self, line_graph):
        sub, _ = induced_subgraph(line_graph, np.array([0, 2, 4]))
        assert sub.num_edges == 0

    def test_preserves_probs(self, diamond_graph):
        sub, labels = induced_subgraph(diamond_graph, np.array([0, 2]))
        # Only edge (0, 2, 0.5) is internal.
        assert sub.num_edges == 1
        assert sub.probs[0] == 0.5

    def test_duplicate_input_vertices_deduped(self, line_graph):
        sub, labels = induced_subgraph(line_graph, np.array([1, 1, 2]))
        assert sub.num_vertices == 2

    def test_rejects_out_of_range(self, line_graph):
        with pytest.raises(ParameterError):
            induced_subgraph(line_graph, np.array([99]))

    def test_empty_selection(self, line_graph):
        sub, labels = induced_subgraph(line_graph, np.array([], dtype=np.int64))
        assert sub.num_vertices == 0 and labels.size == 0

    @given(st.integers(0, 3000))
    @settings(max_examples=25, deadline=None)
    def test_subgraph_edges_subset(self, seed):
        src, dst = erdos_renyi(30, 90, seed=seed)
        g = from_edge_array(src, dst, num_vertices=30)
        rng = np.random.default_rng(seed)
        verts = rng.choice(30, size=12, replace=False)
        sub, labels = induced_subgraph(g, verts)
        orig_edges = {(u, v) for u, v, _ in g.iter_edges()}
        for u, v, _ in sub.iter_edges():
            assert (labels[u], labels[v]) in orig_edges


class TestLargestComponent:
    def test_weak_on_two_triangles(self, two_triangles):
        # Equal components: either is acceptable, size must be 3.
        sub, labels = largest_component(two_triangles)
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_strong_on_line_plus_cycle(self):
        g = make_graph(
            [(0, 1, 1.0), (1, 2, 1.0),  # line tail
             (2, 3, 1.0), (3, 4, 1.0), (4, 2, 1.0)],  # 3-cycle
            n=5,
        )
        sub, labels = largest_component(g, strong=True)
        assert sorted(labels.tolist()) == [2, 3, 4]

    def test_empty_graph(self, empty_graph):
        sub, labels = largest_component(empty_graph)
        assert sub.num_vertices == 0

    def test_connected_graph_unchanged_size(self, cycle_graph):
        sub, _ = largest_component(cycle_graph, strong=True)
        assert sub.num_vertices == cycle_graph.num_vertices


class TestCoreNumbers:
    def test_cycle_is_2_core(self, cycle_graph):
        # Directed cycle symmetrises to degree 2 everywhere.
        assert np.all(core_numbers(cycle_graph) == 2)

    def test_star_core_one(self, star_graph):
        cores = core_numbers(star_graph)
        assert np.all(cores == 1)  # every leaf peels at degree 1, hub too

    def test_clique_core(self):
        edges = [(i, j, 1.0) for i in range(5) for j in range(5) if i != j]
        g = make_graph(edges, n=5)
        # 5-clique with both directions: symmetrised degree 8, core 8.
        assert np.all(core_numbers(g) == 8)

    def test_isolated_zero(self, isolated_graph):
        assert np.all(core_numbers(isolated_graph) == 0)

    def test_monotone_under_edge_removal(self):
        full = make_graph(
            [(i, j, 1.0) for i in range(4) for j in range(4) if i != j], n=4
        )
        partial = make_graph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], n=4)
        assert np.all(core_numbers(partial) <= core_numbers(full))


class TestKCore:
    def test_peels_tail(self):
        # Triangle (both directions) with a pendant vertex.
        edges = [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0), (2, 3)]
        g = make_graph([(u, v, 1.0) for u, v in edges], n=4)
        sub, labels = k_core(g, 2)
        assert sorted(labels.tolist()) == [0, 1, 2]

    def test_zero_core_is_everything(self, line_graph):
        sub, _ = k_core(line_graph, 0)
        assert sub.num_vertices == line_graph.num_vertices

    def test_too_high_k_empty(self, line_graph):
        sub, _ = k_core(line_graph, 99)
        assert sub.num_vertices == 0

    def test_rejects_negative_k(self, line_graph):
        with pytest.raises(ParameterError):
            k_core(line_graph, -1)

    def test_k_core_property_holds(self):
        # In the returned subgraph every vertex has symmetrised degree >= k.
        rng_src, rng_dst = erdos_renyi(60, 300, seed=9)
        g = from_edge_array(rng_src, rng_dst, num_vertices=60)
        k = 4
        sub, _ = k_core(g, k)
        if sub.num_vertices:
            s, d, _ = sub.edge_array()
            deg = np.bincount(s, minlength=sub.num_vertices) + np.bincount(
                d, minlength=sub.num_vertices
            )
            assert deg.min() >= k


class TestOpsEdgeCases:
    """Degenerate inputs: empty graphs, no edges, self-loops in raw CSR."""

    def test_empty_graph_through_all_ops(self, empty_graph):
        sub, labels = induced_subgraph(empty_graph, np.array([], dtype=np.int64))
        assert sub.num_vertices == 0 and labels.size == 0
        sub, labels = largest_component(empty_graph)
        assert sub.num_vertices == 0 and labels.size == 0
        assert core_numbers(empty_graph).size == 0
        sub, labels = k_core(empty_graph, 0)
        assert sub.num_vertices == 0

    def test_disconnected_graph_subgraph(self, isolated_graph):
        sub, labels = induced_subgraph(isolated_graph, np.array([0, 3]))
        assert sub.num_vertices == 2 and sub.num_edges == 0
        assert labels.tolist() == [0, 3]

    def test_disconnected_graph_largest_component(self, isolated_graph):
        # With zero edges every vertex is its own component of size 1.
        sub, labels = largest_component(isolated_graph)
        assert sub.num_vertices == 1 and sub.num_edges == 0

    def test_disconnected_graph_k_core(self, isolated_graph):
        sub, _ = k_core(isolated_graph, 0)
        assert sub.num_vertices == isolated_graph.num_vertices
        sub, _ = k_core(isolated_graph, 1)
        assert sub.num_vertices == 0

    def test_self_loops_dropped_by_induced_subgraph(self):
        g = graph_with_self_loops()
        sub, labels = induced_subgraph(g, np.arange(3))
        # The triangle survives; the builder drops the two self-loops.
        assert labels.tolist() == [0, 1, 2]
        assert sub.num_edges == 3
        assert all(u != v for u, v, _ in sub.iter_edges())

    def test_self_loops_largest_component(self):
        g = graph_with_self_loops()
        sub, labels = largest_component(g, strong=True)
        assert sorted(labels.tolist()) == [0, 1, 2]
        assert all(u != v for u, v, _ in sub.iter_edges())

    def test_self_loops_k_core(self):
        # A self-loop adds 2 to its vertex's symmetrised degree but must not
        # keep a vertex in a core the loop-free graph would peel it from once
        # the subgraph is rebuilt; the returned graph is always loop-free.
        g = graph_with_self_loops()
        sub, labels = k_core(g, 2)
        assert all(u != v for u, v, _ in sub.iter_edges())
        for v in labels.tolist():
            assert v in (0, 1, 2)
