"""Tests for CELF greedy and IMM-vs-greedy solution quality."""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams, celf_greedy
from repro.diffusion.base import get_model
from repro.diffusion.spread import estimate_spread
from repro.errors import ParameterError
from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.weights import assign_ic_weights

from conftest import make_graph


@pytest.fixture(scope="module")
def small_ic():
    src, dst = erdos_renyi(40, 160, seed=11)
    return assign_ic_weights(
        from_edge_array(src, dst, num_vertices=40), seed=11, scale=0.4
    )


class TestCelfGreedy:
    def test_picks_obvious_hub(self):
        g = make_graph([(0, i, 1.0) for i in range(1, 10)], n=10)
        model = get_model("IC", g)
        res = celf_greedy(model, 1, num_samples=20, seed=0)
        assert res.seeds.tolist() == [0]
        assert res.spread == pytest.approx(10.0)

    def test_two_components_two_seeds(self, two_triangles):
        model = get_model("IC", two_triangles)
        res = celf_greedy(model, 2, num_samples=20, seed=0)
        # One seed per triangle covers everything.
        assert {s % 3 for s in []} == set()  # placeholder structure guard
        assert len({s // 3 for s in res.seeds.tolist()}) == 2
        assert res.spread == pytest.approx(6.0)

    def test_seed_count(self, small_ic):
        model = get_model("IC", small_ic)
        res = celf_greedy(model, 5, num_samples=25, seed=1)
        assert res.seeds.size == 5
        assert len(set(res.seeds.tolist())) == 5

    def test_lazy_evaluation_saves_work(self, small_ic):
        model = get_model("IC", small_ic)
        res = celf_greedy(model, 4, num_samples=25, seed=2)
        # Naive greedy would do ~ n*k evaluations; CELF far fewer.
        assert res.num_evaluations < 40 * 4

    def test_candidate_restriction(self, small_ic):
        model = get_model("IC", small_ic)
        cands = np.arange(10)
        res = celf_greedy(model, 3, num_samples=20, seed=3, candidates=cands)
        assert set(res.seeds.tolist()) <= set(range(10))

    def test_rejects_k_above_candidates(self, small_ic):
        model = get_model("IC", small_ic)
        with pytest.raises(ParameterError):
            celf_greedy(model, 5, candidates=np.arange(3))

    def test_rejects_k_above_n(self, two_triangles):
        model = get_model("IC", two_triangles)
        with pytest.raises(ParameterError):
            celf_greedy(model, 7)


class TestIMMQuality:
    """IMM's guarantee: spread within (1 - 1/e - eps) of optimum.  We test
    against CELF greedy (itself (1-1/e)-optimal) with slack for MC noise."""

    def test_imm_matches_greedy_spread(self, small_ic):
        model = get_model("IC", small_ic)
        k = 4
        greedy = celf_greedy(model, k, num_samples=60, seed=4)
        imm = EfficientIMM(small_ic).run(
            IMMParams(k=k, epsilon=0.5, seed=4, theta_cap=4000)
        )
        g_spread = estimate_spread(
            model, greedy.seeds, num_samples=300, seed=5
        ).mean
        i_spread = estimate_spread(
            model, imm.seeds, num_samples=300, seed=5
        ).mean
        # (1 - 1/e - 0.5)/(1 - 1/e) of greedy is the theory floor (~0.21);
        # in practice IMM lands close to greedy — assert a generous 0.75.
        assert i_spread >= 0.75 * g_spread

    def test_imm_beats_random_seeds(self, small_ic):
        model = get_model("IC", small_ic)
        rng = np.random.default_rng(6)
        imm = EfficientIMM(small_ic).run(
            IMMParams(k=4, epsilon=0.5, seed=6, theta_cap=4000)
        )
        i_spread = estimate_spread(model, imm.seeds, num_samples=200, seed=7).mean
        rand_spread = np.mean([
            estimate_spread(
                model, rng.choice(40, 4, replace=False), num_samples=100, seed=8
            ).mean
            for _ in range(5)
        ])
        assert i_spread > rand_spread
