"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmachine.cache import (
    AccessCounts,
    CacheHierarchy,
    CacheSim,
    compress_lines,
)
from repro.simmachine.topology import CacheGeometry


def tiny_geom(sets=4, ways=2, line=64):
    return CacheGeometry(sets * ways * line, ways=ways, line_bytes=line)


class TestCompressLines:
    def test_collapses_runs(self):
        addrs = np.array([0, 8, 16, 64, 65, 128])
        lines, collapsed = compress_lines(addrs, 64)
        assert lines.tolist() == [0, 1, 2]
        assert collapsed == 3

    def test_alternating_not_collapsed(self):
        addrs = np.array([0, 64, 0, 64])
        lines, collapsed = compress_lines(addrs, 64)
        assert lines.tolist() == [0, 1, 0, 1]
        assert collapsed == 0

    def test_empty(self):
        lines, collapsed = compress_lines(np.empty(0, dtype=np.int64), 64)
        assert lines.size == 0 and collapsed == 0


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        c = CacheSim(tiny_geom())
        missed = c.access_lines(np.array([5, 5, 5]))
        assert missed.tolist() == [5]
        assert c.hits == 2 and c.misses == 1

    def test_capacity_eviction_lru(self):
        # 1 set, 2 ways: lines 0, 4, 8 map to the same set (num_sets=4
        # means same-set lines differ by 4).
        c = CacheSim(tiny_geom(sets=4, ways=2))
        c.access_lines(np.array([0, 4]))  # fill the set
        c.access_lines(np.array([8]))  # evicts LRU line 0
        missed = c.access_lines(np.array([0]))
        assert missed.tolist() == [0]

    def test_lru_refresh_on_hit(self):
        c = CacheSim(tiny_geom(sets=4, ways=2))
        c.access_lines(np.array([0, 4]))
        c.access_lines(np.array([0]))  # refresh 0: now 4 is LRU
        c.access_lines(np.array([8]))  # evicts 4
        assert c.access_lines(np.array([0])).size == 0  # 0 still resident
        assert c.access_lines(np.array([4])).tolist() == [4]

    def test_different_sets_independent(self):
        c = CacheSim(tiny_geom(sets=4, ways=1))
        c.access_lines(np.array([0, 1, 2, 3]))
        # All four lines landed in distinct sets: all still resident.
        assert c.access_lines(np.array([0, 1, 2, 3])).size == 0

    def test_reset(self):
        c = CacheSim(tiny_geom())
        c.access_lines(np.array([1]))
        c.reset()
        assert c.hits == 0 and c.misses == 0
        assert c.access_lines(np.array([1])).tolist() == [1]


class TestCacheHierarchy:
    def make(self):
        return CacheHierarchy(tiny_geom(sets=2, ways=2), tiny_geom(sets=8, ways=2))

    def test_l1_hit_path(self):
        h = self.make()
        got = h.access(np.array([0, 0, 0, 0]))
        assert got.l1_misses == 1
        assert got.l1_hits == 3
        assert got.l2_misses == 1

    def test_l2_catches_l1_evictions(self):
        h = self.make()
        # L1 = 2 sets x 2 ways = 4 lines; stream 8 distinct lines then
        # revisit: L1 misses again but L2 (16 lines) holds them.
        lines = np.arange(8) * 64
        h.access(lines)
        got = h.access(lines)
        assert got.l2_misses == 0
        assert got.l1_misses + got.l1_hits == 8

    def test_total_misses_metric(self):
        h = self.make()
        got = h.access(np.array([0]))
        assert got.total_misses == got.l1_misses + got.l2_misses == 2

    def test_cumulative_counts(self):
        h = self.make()
        h.access(np.array([0]))
        h.access(np.array([0]))
        assert h.counts.l1_hits >= 1
        assert h.counts.l1_misses == 1

    def test_sequential_stream_compressed(self):
        h = self.make()
        # 64 consecutive 4-byte elements = 4 lines.
        got = h.access(np.arange(64) * 4)
        assert got.l1_misses + got.l1_hits == 64
        assert got.l1_misses == 4

    def test_reset(self):
        h = self.make()
        h.access(np.array([0]))
        h.reset()
        assert h.counts.total_misses == 0


class TestAccessCounts:
    def test_merge(self):
        a = AccessCounts(1, 2, 3, 4)
        a.merge(AccessCounts(10, 20, 30, 40))
        assert (a.l1_hits, a.l1_misses, a.l2_hits, a.l2_misses) == (11, 22, 33, 44)


class TestLRUProperties:
    @given(st.lists(st.integers(0, 30), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_lru(self, lines):
        """Dict-based simulator must equal a straightforward reference."""
        geom = tiny_geom(sets=2, ways=2)
        sim = CacheSim(geom)
        got_missed = sim.access_lines(np.asarray(lines, dtype=np.int64)).tolist()

        # Reference: per-set ordered list.
        sets: dict[int, list[int]] = {}
        expect_missed = []
        for ln in lines:
            s = sets.setdefault(ln % geom.num_sets, [])
            if ln in s:
                s.remove(ln)
                s.append(ln)
            else:
                expect_missed.append(ln)
                s.append(ln)
                if len(s) > geom.ways:
                    s.pop(0)
        assert got_missed == expect_missed

    @given(st.lists(st.integers(0, 10**6), min_size=0, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_conserved(self, addrs):
        h = CacheHierarchy(tiny_geom(), tiny_geom(sets=16))
        arr = np.asarray(addrs, dtype=np.int64)
        got = h.access(arr)
        assert got.l1_hits + got.l1_misses == arr.size
        assert got.l2_hits + got.l2_misses == got.l1_misses

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_never_more_misses(self, lines):
        arr = np.asarray(lines, dtype=np.int64)
        small = CacheSim(tiny_geom(sets=2, ways=1))
        big = CacheSim(tiny_geom(sets=2, ways=8))
        small.access_lines(arr)
        big.access_lines(arr)
        assert big.misses <= small.misses
