"""Tests for the simulated-cluster distributed IMM extension."""

import numpy as np
import pytest

from repro.core.params import IMMParams
from repro.core.selection import efficient_select
from repro.distributed import (
    DistributedIMM,
    SimulatedComm,
    perlmutter_cluster,
)
from repro.distributed.cluster import ClusterTopology
from repro.errors import ParameterError
from repro.simmachine.topology import perlmutter
from repro.sketch.store import FlatRRRStore


class TestClusterTopology:
    def test_preset(self):
        c = perlmutter_cluster(4)
        assert c.num_nodes == 4
        assert c.total_cores == 4 * 128

    def test_rejects_zero_nodes(self):
        with pytest.raises(ParameterError):
            perlmutter_cluster(0)

    def test_single_node_collectives_free(self):
        c = perlmutter_cluster(1)
        assert c.allreduce_s(1_000_000) == 0.0
        assert c.bcast_s(1_000_000) == 0.0

    def test_allreduce_cost_grows_with_nodes(self):
        small = perlmutter_cluster(2).allreduce_s(10**6)
        big = perlmutter_cluster(16).allreduce_s(10**6)
        assert big > small

    def test_allreduce_cost_grows_with_bytes(self):
        c = perlmutter_cluster(4)
        assert c.allreduce_s(10**7) > c.allreduce_s(10**4)

    def test_point_to_point(self):
        c = perlmutter_cluster(2)
        assert c.point_to_point_s(0) == pytest.approx(c.alpha_s)
        assert c.point_to_point_s(25_000_000_000) == pytest.approx(
            c.alpha_s + 1.0, rel=0.01
        )

    def test_rejects_negative_constants(self):
        with pytest.raises(ParameterError):
            ClusterTopology("x", 2, perlmutter(), -1.0, 0.0)


class TestSimulatedComm:
    def setup_method(self):
        self.comm = SimulatedComm(perlmutter_cluster(4))

    def test_allreduce_sum_exact(self):
        bufs = [np.full(5, r, dtype=np.int64) for r in range(4)]
        out = self.comm.Allreduce_sum(bufs)
        assert np.all(out == 0 + 1 + 2 + 3)

    def test_allreduce_does_not_mutate_inputs(self):
        bufs = [np.ones(3, dtype=np.int64) for _ in range(4)]
        self.comm.Allreduce_sum(bufs)
        for b in bufs:
            assert np.all(b == 1)

    def test_allreduce_max(self):
        bufs = [np.array([r, 10 - r]) for r in range(4)]
        out = self.comm.Allreduce_max(bufs)
        assert out.tolist() == [3, 10]

    def test_world_size_checked(self):
        with pytest.raises(ParameterError):
            self.comm.Allreduce_sum([np.ones(2)] * 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            self.comm.Allreduce_sum(
                [np.ones(2), np.ones(3), np.ones(2), np.ones(2)]
            )

    def test_stats_accumulate(self):
        self.comm.Allreduce_sum([np.ones(100, dtype=np.int64)] * 4)
        self.comm.Barrier()
        assert self.comm.stats.num_collectives == 2
        assert self.comm.stats.comm_time_s > 0.0
        assert self.comm.stats.by_kind["allreduce"] == 1
        assert self.comm.stats.by_kind["barrier"] == 1

    def test_gather_copies(self):
        bufs = [np.array([r]) for r in range(4)]
        out = self.comm.Gather(bufs)
        out[0][0] = 99
        assert bufs[0][0] == 0


class TestDistributedIMM:
    @pytest.fixture(scope="class")
    def skitter(self):
        from repro.graph.datasets import load_dataset

        return load_dataset("skitter", model="IC", seed=0)

    def test_seed_count_and_range(self, skitter):
        res = DistributedIMM(skitter, perlmutter_cluster(4)).run(
            IMMParams(k=8, theta_cap=600, seed=1)
        )
        assert res.seeds.size == 8
        assert len(set(res.seeds.tolist())) == 8
        assert res.seeds.max() < skitter.num_vertices

    def test_matches_serial_on_union_store(self, skitter):
        """The distributed greedy must equal a serial greedy over the union
        of all ranks' RRR sets — the collectives change nothing semantically."""
        cluster = perlmutter_cluster(3)
        dimm = DistributedIMM(skitter, cluster)
        params = IMMParams(k=6, theta_cap=450, seed=7)

        # Reconstruct the union store with the same spawned RNG streams.
        from repro._util import spawn_rngs
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model

        res = dimm.run(params)
        rngs = spawn_rngs(params.seed, 3)
        union = FlatRRRStore(skitter.num_vertices, sort_sets=True)
        for r, count in enumerate(res.sets_per_rank):
            sampler = RRRSampler(
                get_model("IC", skitter),
                SamplingConfig.efficientimm(num_threads=1),
                seed=rngs[r],
            )
            sampler.extend(count)
            for s in sampler.store:
                union.append(s)
        serial = efficient_select(union, params.k)
        # Same multiset of sets => same greedy outcome up to set ordering,
        # which only permutes ties; compare coverage and seed sets.
        assert res.coverage_fraction == pytest.approx(
            serial.coverage_fraction, abs=1e-12
        )
        assert set(res.seeds.tolist()) == set(serial.seeds.tolist()[:params.k])

    def test_determinism(self, skitter):
        params = IMMParams(k=5, theta_cap=400, seed=2)
        a = DistributedIMM(skitter, perlmutter_cluster(2)).run(params)
        b = DistributedIMM(skitter, perlmutter_cluster(2)).run(params)
        assert np.array_equal(a.seeds, b.seeds)
        assert a.total_time_s == b.total_time_s

    def test_sets_split_across_ranks(self, skitter):
        res = DistributedIMM(skitter, perlmutter_cluster(4)).run(
            IMMParams(k=4, theta_cap=400, seed=3)
        )
        assert len(res.sets_per_rank) == 4
        assert max(res.sets_per_rank) - min(res.sets_per_rank) <= 1

    def test_comm_grows_with_ranks(self, skitter):
        params = IMMParams(k=6, theta_cap=400, seed=4)
        small = DistributedIMM(skitter, perlmutter_cluster(2)).run(params)
        big = DistributedIMM(skitter, perlmutter_cluster(8)).run(params)
        assert big.comm.comm_time_s > small.comm.comm_time_s

    def test_single_rank_no_comm_cost(self, skitter):
        res = DistributedIMM(skitter, perlmutter_cluster(1)).run(
            IMMParams(k=4, theta_cap=300, seed=5)
        )
        assert res.comm.comm_time_s == 0.0

    def test_sampling_shrinks_with_ranks(self, skitter):
        params = IMMParams(k=4, theta_cap=2000, seed=6)
        one = DistributedIMM(
            skitter, perlmutter_cluster(1), threads_per_rank=16
        ).run(params)
        four = DistributedIMM(
            skitter, perlmutter_cluster(4), threads_per_rank=16
        ).run(params)
        assert four.sampling_time_s < one.sampling_time_s

    def test_rejects_bad_threads_per_rank(self, skitter):
        with pytest.raises(ParameterError):
            DistributedIMM(skitter, perlmutter_cluster(2), threads_per_rank=999)


class TestDistributedRipples:
    @pytest.fixture(scope="class")
    def skitter(self):
        from repro.graph.datasets import load_dataset

        return load_dataset("skitter", model="IC", seed=0)

    def test_seeds_match_distributed_imm(self, skitter):
        from repro.distributed import DistributedRipples

        params = IMMParams(k=6, theta_cap=450, seed=7)
        cluster = perlmutter_cluster(3)
        a = DistributedIMM(skitter, cluster).run(params)
        b = DistributedRipples(skitter, cluster).run(params)
        assert np.array_equal(a.seeds, b.seeds)
        assert a.coverage_fraction == b.coverage_fraction

    def test_communication_volumes_equal(self, skitter):
        """The paper's §VI claim, asserted: EfficientIMM's distributed
        design adds no communication over Ripples' MPI design."""
        from repro.distributed import DistributedRipples

        params = IMMParams(k=6, theta_cap=450, seed=7)
        cluster = perlmutter_cluster(4)
        a = DistributedIMM(skitter, cluster).run(params)
        b = DistributedRipples(skitter, cluster).run(params)
        assert a.comm.bytes_on_wire == b.comm.bytes_on_wire
        assert a.comm.num_collectives == b.comm.num_collectives

    def test_node_local_work_is_the_difference(self, skitter):
        from repro.distributed import DistributedRipples

        params = IMMParams(k=6, theta_cap=450, seed=7)
        cluster = perlmutter_cluster(2)
        a = DistributedIMM(skitter, cluster, threads_per_rank=16).run(params)
        b = DistributedRipples(skitter, cluster, threads_per_rank=16).run(params)
        # Same wire, slower node-local kernels for Ripples.
        assert b.selection_compute_s > 2.0 * a.selection_compute_s
        assert b.total_time_s > a.total_time_s

    def test_determinism(self, skitter):
        from repro.distributed import DistributedRipples

        params = IMMParams(k=4, theta_cap=300, seed=8)
        cluster = perlmutter_cluster(2)
        a = DistributedRipples(skitter, cluster).run(params)
        b = DistributedRipples(skitter, cluster).run(params)
        assert np.array_equal(a.seeds, b.seeds)
