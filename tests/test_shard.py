"""Tests for repro.shard: plans, workers, and the cluster pipeline.

The router's end-to-end determinism and failure handling live in
test_shard_router.py; this module covers the layers underneath — ownership
assignment (consistent hashing, block/balanced), sub-sketch fingerprints,
the worker's cold-streaming build (byte-identical to the partitioned full
sketch), artifact round-trips, the self-healing session protocol, and the
cluster build/publish fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel_sampling import parallel_generate
from repro.errors import BackendError, ParameterError
from repro.graph.io import graph_fingerprint
from repro.runtime.backends import SerialBackend
from repro.service.artifacts import sketch_fingerprint
from repro.service.engine import EngineConfig
from repro.shard import (
    ShardCluster,
    ShardPlan,
    ShardWorker,
    SketchSpec,
    shard_fingerprint,
)

from conftest import make_graph

THETA = 80  # sketch size used throughout (small => fast cold streams)


def small_graph(n=40, seed=0):
    """A connected-ish random digraph, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    edges = [(i, (i + 1) % n, 0.6) for i in range(n)]
    for _ in range(3 * n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v), 0.4))
    return make_graph(edges, n=n)


def spec_for(dataset="synth", num_sets=THETA):
    return SketchSpec(dataset=dataset, num_sets=num_sets, seed=3)


# ===================================================================== plans
class TestShardPlan:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ShardPlan(num_shards=0)
        with pytest.raises(ParameterError):
            ShardPlan(num_shards=2, replication=0)
        with pytest.raises(ParameterError):
            ShardPlan(num_shards=2, strategy="roundrobin")
        with pytest.raises(ParameterError):
            ShardPlan(num_shards=2, virtual_nodes=0)
        with pytest.raises(ParameterError):
            ShardPlan(num_shards=2).assign_sets("fp", -1)

    @pytest.mark.parametrize("strategy", ["hash", "block"])
    def test_assignment_is_a_partition(self, strategy):
        plan = ShardPlan(num_shards=4, strategy=strategy)
        owners = plan.assign_sets("fp0", 200)
        assert owners.shape == (200,)
        assert owners.min() >= 0 and owners.max() < 4
        masks = [plan.owned_mask("fp0", 200, s) for s in range(4)]
        total = np.sum(masks, axis=0)
        assert np.all(total == 1), "every set owned by exactly one shard"

    def test_hash_assignment_deterministic_and_fingerprint_sensitive(self):
        plan = ShardPlan(num_shards=4)
        a = plan.assign_sets("fp0", 300)
        assert np.array_equal(a, ShardPlan(num_shards=4).assign_sets("fp0", 300))
        assert not np.array_equal(a, plan.assign_sets("fp1", 300))

    def test_consistent_hashing_remaps_a_small_fraction(self):
        """Adding a shard moves ~1/num_shards of the sets, not all of them."""
        before = ShardPlan(num_shards=4).assign_sets("fp", 400)
        after = ShardPlan(num_shards=5).assign_sets("fp", 400)
        moved = float((before != after).mean())
        assert moved < 0.40, f"{moved:.0%} of sets remapped by one new shard"

    def test_hash_balance_is_reasonable(self):
        owners = ShardPlan(num_shards=4).assign_sets("fp", 400)
        counts = np.bincount(owners, minlength=4)
        assert counts.min() > 0
        assert counts.max() <= 3 * counts.min()

    def test_balanced_needs_sizes(self):
        plan = ShardPlan(num_shards=2, strategy="balanced")
        with pytest.raises(ParameterError, match="sizes"):
            plan.assign_sets("fp", 10)
        sizes = np.array([10, 1, 1, 1, 10, 1])
        owners = plan.assign_sets("fp", 6, sizes=sizes)
        per_shard = np.bincount(owners, weights=sizes, minlength=2)
        assert abs(per_shard[0] - per_shard[1]) <= 10

    def test_partition_store_counters_sum_exactly(self):
        g = small_graph()
        full = parallel_generate(
            g, "IC", THETA, num_workers=1, seed=3, backend=SerialBackend()
        )
        plan = ShardPlan(num_shards=3)
        parts = plan.partition_store(full, "fp")
        assert len(parts) == len(full)
        total = np.zeros(g.num_vertices, dtype=np.int64)
        for part in parts.parts:
            total += part.vertex_counts()
        assert np.array_equal(total, full.vertex_counts())

    def test_shard_fingerprints_distinct(self):
        p = ShardPlan(num_shards=4)
        fps = {shard_fingerprint("fp", s, p) for s in range(4)}
        assert len(fps) == 4
        other = ShardPlan(num_shards=4, virtual_nodes=32)
        assert shard_fingerprint("fp", 0, p) != shard_fingerprint("fp", 0, other)

    def test_worker_naming_and_describe(self):
        plan = ShardPlan(num_shards=2, replication=3)
        assert plan.num_workers == 6
        assert plan.worker_name(1, 2) == "s1r2"
        d = plan.describe()
        assert d["num_shards"] == 2 and d["num_workers"] == 6


# =================================================================== workers
class TestShardWorker:
    def test_ctor_validates_ids(self):
        plan = ShardPlan(num_shards=2)
        with pytest.raises(ParameterError):
            ShardWorker(2, plan)
        with pytest.raises(ParameterError):
            ShardWorker(0, plan, replica_id=-1)
        # ``plan.replication`` is only the *initial* layout: the control
        # plane may scale a shard past it, so higher replica ids are legal.
        w = ShardWorker(0, plan, replica_id=3)
        assert w.name == "s0r3"
        w.close()

    @pytest.mark.parametrize("strategy", ["hash", "block", "balanced"])
    def test_cold_build_matches_partitioned_full_sketch(self, strategy):
        """The streaming cold path derives exactly the owned slice of the
        deterministic global sampling sequence."""
        g = small_graph()
        gfp = graph_fingerprint(g)
        plan = ShardPlan(num_shards=3, strategy=strategy)
        spec = spec_for()
        full = parallel_generate(
            g, "IC", THETA, num_workers=1, seed=spec.seed,
            backend=SerialBackend(),
        )
        fp = sketch_fingerprint(gfp, "IC", spec.epsilon, spec.seed, THETA)
        parts = plan.partition_store(full, fp)
        for shard in range(3):
            with ShardWorker(shard, plan) as w:
                w.install_graph("synth", g)
                info = w.session_open("s", spec)
                assert info.fingerprint == fp
                entry = w.engine.cache.get(info.shard_fingerprint)
                expect = parts.parts[shard]
                assert np.array_equal(entry.store.offsets, expect.offsets)
                assert np.array_equal(entry.store.vertices, expect.vertices)
                assert np.array_equal(
                    info.counter, expect.vertex_counts()
                )

    def test_artifact_round_trip(self, tmp_path):
        g = small_graph()
        plan = ShardPlan(num_shards=2)
        cfg = EngineConfig(artifact_dir=str(tmp_path))
        spec = spec_for()
        with ShardWorker(0, plan, config=cfg) as w:
            w.install_graph("synth", g)
            first = w.session_open("s", spec)
            assert not first.warm and w.stats.cold_builds == 1
        with ShardWorker(0, plan, config=cfg) as w2:
            w2.install_graph("synth", g)
            again = w2.session_open("s", spec)
            assert again.warm
            assert w2.stats.artifact_loads == 1 and w2.stats.cold_builds == 0
            assert again.sketch_bytes == first.sketch_bytes

    def test_warm_hit_on_second_open(self):
        g = small_graph()
        with ShardWorker(0, ShardPlan(num_shards=1)) as w:
            w.install_graph("synth", g)
            assert not w.session_open("a", spec_for()).warm
            assert w.session_open("b", spec_for()).warm
            assert w.stats.warm_hits == 1

    def test_fault_hooks(self):
        g = small_graph()
        with ShardWorker(0, ShardPlan(num_shards=1)) as w:
            w.install_graph("synth", g)
            assert w.ping() == "s0r0"
            w.kill()
            assert w.dead
            with pytest.raises(BackendError):
                w.ping()
            w.revive()
            assert w.ping() == "s0r0"
            w.fail_after(2)
            assert w.ping() == "s0r0"
            assert w.ping() == "s0r0"
            with pytest.raises(BackendError):
                w.ping()
            with pytest.raises(BackendError):
                w.ping()
            with pytest.raises(ParameterError):
                w.fail_after(-1)

    def test_session_replay_matches_live_session(self):
        """A fresh replica handed the history mid-stream gives the same
        cover results as one that participated from the start."""
        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=2)
        spec = spec_for()
        with ShardWorker(0, plan) as live, ShardWorker(
            0, plan, replica_id=1
        ) as fresh:
            live.install_graph("synth", g)
            fresh.install_graph("synth", g)
            info = live.session_open("s", spec)
            seeds = np.argsort(info.counter)[::-1][:3].tolist()
            history: list[int] = []
            for v in seeds[:2]:
                live.session_cover("s", spec, tuple(history), v)
                history.append(v)
            a = live.session_cover("s", spec, tuple(history), seeds[2])
            b = fresh.session_cover("s", spec, tuple(history), seeds[2])
            assert b.replayed and not a.replayed
            assert fresh.stats.replays == 1
            assert a.new_covered == b.new_covered
            assert np.array_equal(np.sort(a.dec), np.sort(b.dec))

    def test_session_counts_tracks_uncovered_sets(self):
        g = small_graph()
        spec = spec_for()
        with ShardWorker(0, ShardPlan(num_shards=1)) as w:
            w.install_graph("synth", g)
            info = w.session_open("s", spec)
            assert np.array_equal(
                w.session_counts("s", spec, ()), info.counter
            )
            v = int(np.argmax(info.counter))
            res = w.session_cover("s", spec, (), v)
            after = w.session_counts("s", spec, (v,))
            assert int(info.counter.sum() - after.sum()) == res.dec.size
            assert after[v] == 0

    def test_session_close_forgets(self):
        g = small_graph()
        spec = spec_for()
        with ShardWorker(0, ShardPlan(num_shards=1)) as w:
            w.install_graph("synth", g)
            w.session_open("s", spec)
            w.session_close("s")
            # Covering after close triggers a replay (state was dropped).
            res = w.session_cover("s", spec, (), 0)
            assert res.replayed


# =================================================================== cluster
class TestShardCluster:
    def test_build_warms_every_replica(self, tmp_path):
        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=2)
        with ShardCluster(
            plan, engine_config=EngineConfig(artifact_dir=str(tmp_path))
        ) as cluster:
            cluster.install_graph("synth", g)
            summary = cluster.build(spec_for())
            assert len(summary["shards"]) == 2
            assert sum(s["num_sets"] for s in summary["shards"]) == THETA
            for w in cluster.workers:
                assert w.session_open("s", spec_for()).warm
                assert w.stats.cold_builds == 0
            # Artifacts persisted once per shard fingerprint.
            names = {s["shard_fingerprint"] for s in summary["shards"]}
            for sub_fp in names:
                assert cluster.workers[0].engine.artifacts.has_sketch(sub_fp)

    def test_kill_and_revive_granularity(self):
        plan = ShardPlan(num_shards=2, replication=2)
        with ShardCluster(plan) as cluster:
            assert cluster.kill(0, 1) == ["s0r1"]
            assert not cluster.worker(0, 0).dead
            assert cluster.worker(0, 1).dead
            assert set(cluster.kill(1)) == {"s1r0", "s1r1"}
            cluster.revive(1)
            assert not any(w.dead for w in cluster.replicas(1))
            with pytest.raises(ParameterError):
                cluster.worker(5, 0)

    def test_stats_snapshot_shape(self):
        with ShardCluster(ShardPlan(num_shards=2)) as cluster:
            snap = cluster.stats_snapshot()
            assert snap["plan"]["num_shards"] == 2
            assert len(snap["workers"]) == 2
            assert "router" in snap and "health" in snap

    def test_revive_rewarms_from_shm_before_partition(self):
        """Regression: a revived replica whose cache was dropped must
        re-acquire its sub-sketch in the warm order — shm segment attach
        first, retained partition second — and never cold-build (a cold
        re-sample of a dynamic epoch would diverge from the maintainer's
        repaired store)."""
        import repro.shm as shm
        from repro.service.protocol import IMQuery

        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=2)
        q = IMQuery(dataset="synth", k=6, seed=3, theta_cap=THETA)
        m = shm.SegmentManager(prefix="trw")
        try:
            with ShardCluster(
                plan,
                engine_config=EngineConfig(persist=False),
                segment_manager=m,
            ) as cluster:
                cluster.install_graph("synth", g)
                summary = cluster.build(spec_for())
                expected = cluster.query(q)
                sub_fp = shard_fingerprint(summary["fingerprint"], 0, plan)
                w = cluster.worker(0, 1)
                attaches = w.stats.shm_attaches
                cluster.kill(0, 1)
                w.engine.cache.clear()  # evicted while down
                cluster.revive(0, 1)
                # The shm tier won: one new zero-copy attach, warm cache,
                # no cold build.
                assert w.stats.shm_attaches == attaches + 1
                assert w.engine.cache.get(sub_fp) is not None
                assert w.stats.cold_builds == 0
                got = cluster.query(q)
                assert got.ok and not got.degraded
                assert got.seeds == expected.seeds
        finally:
            m.close()

    def test_revive_rewarms_from_retained_partition_without_shm(self):
        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=2)
        with ShardCluster(plan) as cluster:
            cluster.install_graph("synth", g)
            summary = cluster.build(spec_for())
            sub_fp = shard_fingerprint(summary["fingerprint"], 1, plan)
            w = cluster.worker(1, 0)
            cluster.kill(1, 0)
            w.engine.cache.clear()
            cluster.revive(1, 0)
            assert w.engine.cache.get(sub_fp) is not None
            assert w.stats.shm_attaches == 0
            assert w.stats.cold_builds == 0

    def test_add_and_remove_replica_round_trip(self):
        """Scaling is additive on an immutable plan: the new replica reuses
        the published sub-sketch keys, answers stay byte-identical, and
        removal refuses to empty a shard."""
        from repro.service.protocol import IMQuery

        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=1)
        q = IMQuery(dataset="synth", k=6, seed=3, theta_cap=THETA)
        with ShardCluster(plan) as cluster:
            cluster.install_graph("synth", g)
            cluster.build(spec_for())
            expected = cluster.query(q)
            assert cluster.add_replica(0) == "s0r1"
            assert cluster.add_replica(1) == "s1r1"
            assert len(cluster.workers) == 4
            for shard in (0, 1):
                w = cluster.worker(shard, 1)
                assert w.stats.cold_builds == 0
            got = cluster.query(q)
            assert got.seeds == expected.seeds and not got.degraded
            assert cluster.remove_replica(0) == "s0r1"  # highest id default
            assert cluster.remove_replica(1, replica=1) == "s1r1"
            assert cluster.query(q).seeds == expected.seeds
            with pytest.raises(ParameterError):
                cluster.remove_replica(0)  # never empty a shard
            with pytest.raises(ParameterError):
                cluster.add_replica(9)
