"""Tests for repro.control.probe: rate windows, clamping, and live sampling.

The RateTracker tests double as the regression suite for the
merge-on-reduce protocol's ugly corner: counters observed through
snapshots can *appear* to regress (registry ``clear()``, out-of-order
folds of worker deltas), and a policy fed a negative rate would
hallucinate recovering traffic.  Every delta must clamp at zero.
"""

from __future__ import annotations

import threading
import time

from repro import telemetry
from repro.control import HealthProbe, HealthSample, RateTracker, ReplicaHealth
from repro.shard import ShardCluster, ShardPlan
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots

from test_shard import small_graph, spec_for


class TestRateTracker:
    def test_first_window_is_empty(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(10)
        window = RateTracker().advance(reg.snapshot(), now=0.0)
        assert window["elapsed_s"] == 0.0
        assert window["deltas"] == {} and window["rates"] == {}
        assert window["histograms"] == {}

    def test_deltas_and_rates_over_a_window(self):
        reg = MetricsRegistry()
        tracker = RateTracker()
        reg.counter("gateway.shed").inc(3)
        tracker.advance(reg.snapshot(), now=0.0)
        reg.counter("gateway.shed").inc(5)
        window = tracker.advance(reg.snapshot(), now=2.0)
        assert window["elapsed_s"] == 2.0
        assert window["deltas"]["gateway.shed"] == 5.0
        assert window["rates"]["gateway.shed"] == 2.5

    def test_counter_regression_clamps_to_zero(self):
        """A registry clear between samples must read as 'no progress'."""
        reg = MetricsRegistry()
        tracker = RateTracker()
        reg.counter("c").inc(100)
        tracker.advance(reg.snapshot(), now=0.0)
        reg.clear()
        reg.counter("c").inc(1)  # now 1 < 100: apparent regression
        window = tracker.advance(reg.snapshot(), now=1.0)
        assert window["deltas"]["c"] == 0.0
        assert window["rates"]["c"] == 0.0

    def test_out_of_order_merge_fold_never_goes_negative(self):
        """Merge-on-reduce: folding an older worker snapshot after a newer
        one shrinks the merged totals; the windowed rate must clamp."""
        w1, w2 = MetricsRegistry(), MetricsRegistry()
        w1.counter("q").inc(10)
        old_w2 = None
        w2.counter("q").inc(4)
        old_w2 = w2.snapshot()
        w2.counter("q").inc(6)  # w2 now at 10
        tracker = RateTracker()
        tracker.advance(merge_snapshots([w1.snapshot(), w2.snapshot()]), 0.0)
        # The fold that lands next only has w2's *older* delta: total 14 < 20.
        window = tracker.advance(
            merge_snapshots([w1.snapshot(), old_w2]), 1.0
        )
        assert window["deltas"]["q"] == 0.0
        assert all(v >= 0.0 for v in window["rates"].values())

    def test_windowed_histograms_forget_old_breaches(self):
        """p99 must be computed per window: a past latency spike cannot pin
        the percentile high after traffic recovers."""
        reg = MetricsRegistry()
        tracker = RateTracker()
        w1 = tracker.advance(reg.snapshot(), now=0.0)  # first: no window
        assert w1["histograms"] == {}
        for _ in range(50):
            reg.histogram("lat").observe(2.0)  # the breach window
        w2 = tracker.advance(reg.snapshot(), now=1.0)
        assert w2["histograms"]["lat"].percentile(0.99) >= 2.0
        for _ in range(50):
            reg.histogram("lat").observe(0.001)  # the recovered window
        w3 = tracker.advance(reg.snapshot(), now=2.0)
        assert w3["histograms"]["lat"].percentile(0.99) < 0.01
        # A window with no new observations drops the histogram entirely.
        w4 = tracker.advance(reg.snapshot(), now=3.0)
        assert "lat" not in w4["histograms"]

    def test_concurrent_writers_never_produce_negative_deltas(self):
        """Satellite regression: snapshots taken while N threads hammer the
        registry must always delta forward (counters are monotonic under
        the per-instrument locks; the tracker clamps whatever remains)."""
        reg = MetricsRegistry()
        stop = threading.Event()

        def writer(i):
            while not stop.is_set():
                reg.counter("hits").inc()
                reg.counter(f"w{i}.ops").inc(2)
                reg.histogram("lat").observe(0.01 * (i + 1))

        threads = [
            threading.Thread(target=writer, args=(i,), daemon=True)
            for i in range(4)
        ]
        for t in threads:
            t.start()
        tracker = RateTracker()
        windows = []
        for step in range(30):
            time.sleep(0.002)  # let the writers make progress
            windows.append(tracker.advance(reg.snapshot(), now=float(step)))
        stop.set()
        for t in threads:
            t.join(timeout=30)
        for window in windows:
            for name, delta in window["deltas"].items():
                assert delta >= 0.0, f"negative delta for {name}"
            for name, rate in window["rates"].items():
                assert rate >= 0.0, f"negative rate for {name}"
            for hist in window["histograms"].values():
                assert hist.count > 0
        # The writers did make observable progress through the snapshots.
        total = sum(w["deltas"].get("hits", 0.0) for w in windows)
        assert total > 0


class TestHealthSample:
    def test_round_trips_through_json_dict(self):
        s = HealthSample(
            ts=1.5,
            num_shards=2,
            replicas=(
                ReplicaHealth(name="s0r0", shard=0, replica=0, dead=False),
                ReplicaHealth(
                    name="s1r0", shard=1, replica=0, dead=True,
                    consecutive_failures=2, healthy=False,
                ),
            ),
            queue_depth=3,
            queue_capacity=64,
            shed_rate=1.25,
            shed_by_cause={"queue_full": 1.25},
            p99_latency_s=0.2,
            sketch_bytes=1000,
            graph_epoch=4,
            served_epoch=3,
            staleness=1,
        )
        back = HealthSample.from_dict(s.to_dict())
        assert back.to_dict() == s.to_dict()
        assert back.replicas_per_shard() == {0: 1, 1: 1}
        assert [r.name for r in back.dead_replicas()] == ["s1r0"]


class TestHealthProbe:
    def test_probe_reports_cluster_liveness_and_footprint(self):
        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=2)
        with telemetry.session(), ShardCluster(plan) as cluster:
            cluster.install_graph("synth", g)
            cluster.build(spec_for())
            probe = HealthProbe(cluster=cluster)
            s = probe.sample()
            assert s.source == "live"
            assert s.num_shards == 2 and len(s.replicas) == 4
            assert s.dead_replicas() == ()
            assert s.sketch_bytes > 0  # summed from the per-shard gauges
            cluster.kill(0, 1)
            s2 = probe.sample()
            assert [r.name for r in s2.dead_replicas()] == ["s0r1"]
            assert s2.replicas_per_shard() == {0: 2, 1: 2}

    def test_probe_without_handles_returns_defaults(self):
        s = HealthProbe().sample()
        assert s.num_shards == 0 and s.replicas == ()
        assert s.queue_capacity == 0 and s.graph_epoch == -1
