"""Tests for the bench reporting utilities and the CLI."""

import numpy as np
import pytest

from repro.bench.report import Table, format_ratio, format_speedup
from repro.cli import build_parser, main


class TestTable:
    def test_render_alignment(self):
        t = Table("Demo", ["name", "value"])
        t.add_row("alpha", 1.0)
        t.add_row("b", 12345.678)
        out = t.render()
        assert "== Demo ==" in out
        assert "alpha" in out and "12,346" in out

    def test_rejects_wrong_arity(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_notes_rendered(self):
        t = Table("Demo", ["a"])
        t.add_note("caveat")
        assert "* caveat" in t.render()

    def test_float_formats(self):
        t = Table("Demo", ["x"])
        t.add_row(0.0)
        t.add_row(0.123456)
        t.add_row(42.0)
        out = t.render()
        assert "0.123" in out and "42.0" in out

    def test_csv_roundtrip(self, tmp_path):
        t = Table("Demo", ["a", "b"])
        t.add_row("x", 1)
        p = tmp_path / "t.csv"
        t.to_csv(p)
        lines = p.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "x,1"

    def test_empty_table_renders(self):
        assert "Empty" in Table("Empty", ["a"]).render()


class TestFormatters:
    def test_speedup(self):
        assert format_speedup(5.94) == "5.9x"

    def test_ratio(self):
        assert "paper" in format_ratio(0.62, 0.61)


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "amazon", "--k", "5"])
        assert args.dataset == "amazon" and args.k == 5

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "youtube" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "com-Amazon" in out and "Twitter7" in out

    def test_run_command(self, capsys):
        rc = main([
            "run", "skitter", "--k", "3", "--theta-cap", "200", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seeds:" in out and "Generate_RRRsets" in out

    def test_run_ripples_framework(self, capsys):
        rc = main([
            "run", "skitter", "--k", "2", "--theta-cap", "100",
            "--framework", "ripples",
        ])
        assert rc == 0

    def test_run_with_spread(self, capsys):
        rc = main([
            "run", "skitter", "--k", "2", "--theta-cap", "100",
            "--estimate-spread",
        ])
        assert rc == 0
        assert "MC spread" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCLIExtended:
    def test_experiment_csv_flag(self, tmp_path, capsys):
        rc = main(["experiment", "fig1", "--csv", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig1.csv").exists()
        header = (tmp_path / "fig1.csv").read_text().splitlines()[0]
        assert header.startswith("Model,")

    def test_validate_command(self, capsys):
        rc = main(["validate", "--dataset", "skitter", "--seed", "1"])
        out = capsys.readouterr().out
        assert "statistical checks passed" in out
        assert rc == 0

    def test_sweep_then_extract(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "sweep", "--datasets", "skitter", "--models", "IC",
            "--k", "5", "--seed", "2",
        ])
        assert rc == 0
        rc = main(["extract-results"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup_ic.csv" in out
