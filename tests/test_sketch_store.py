"""Tests for the RRR stores (flat, adaptive/budgeted, partitioned)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryModelError, ParameterError
from repro.sketch.rrr import AdaptivePolicy
from repro.sketch.store import AdaptiveRRRStore, FlatRRRStore, PartitionedRRRStore


class TestFlatRRRStore:
    def test_append_and_get(self):
        s = FlatRRRStore(10)
        s.append(np.array([3, 1, 2]))
        s.append(np.array([7]))
        assert len(s) == 2
        assert s.get(0).tolist() == [3, 1, 2]
        assert s.get(1).tolist() == [7]

    def test_sorted_mode(self):
        s = FlatRRRStore(10, sort_sets=True)
        s.append(np.array([3, 1, 2]))
        assert s.get(0).tolist() == [1, 2, 3]

    def test_growth_preserves_data(self):
        s = FlatRRRStore(1000)
        rng = np.random.default_rng(0)
        sets = [rng.integers(0, 1000, size=rng.integers(1, 50)) for _ in range(200)]
        for x in sets:
            s.append(x)
        for i, x in enumerate(sets):
            assert np.array_equal(s.get(i), x.astype(np.int32))

    def test_sizes(self):
        s = FlatRRRStore(10)
        s.extend([np.array([1]), np.array([2, 3]), np.array([], dtype=np.int32)])
        assert s.sizes().tolist() == [1, 2, 0]

    def test_vertex_counts(self):
        s = FlatRRRStore(5)
        s.extend([np.array([0, 1]), np.array([1, 2]), np.array([1])])
        assert s.vertex_counts().tolist() == [1, 3, 1, 0, 0]

    def test_sets_containing(self):
        s = FlatRRRStore(5)
        s.extend([np.array([0, 1]), np.array([2]), np.array([1, 2])])
        assert s.sets_containing(1).tolist() == [0, 2]
        assert s.sets_containing(4).tolist() == []

    def test_index_error(self):
        s = FlatRRRStore(5)
        with pytest.raises(IndexError):
            s.get(0)

    def test_iteration(self):
        s = FlatRRRStore(5)
        s.extend([np.array([0]), np.array([1])])
        assert [x.tolist() for x in s] == [[0], [1]]

    def test_nbytes_logical(self):
        s = FlatRRRStore(5)
        s.append(np.array([0, 1, 2]))
        assert s.nbytes() == 3 * 4 + 2 * 8

    def test_empty_set_append(self):
        s = FlatRRRStore(5)
        s.append(np.array([], dtype=np.int32))
        assert len(s) == 1 and s.get(0).size == 0


class TestAdaptiveRRRStore:
    def test_ripples_mode_all_lists(self):
        s = AdaptiveRRRStore(100, policy=None)
        s.append(np.arange(90))  # dense, but policy=None forces a list
        assert s.representation_histogram() == {"list": 1}

    def test_adaptive_mode_switches(self):
        s = AdaptiveRRRStore(320, policy=AdaptivePolicy())
        s.append(np.arange(5))
        s.append(np.arange(200))
        assert s.representation_histogram() == {"list": 1, "bitmap": 1}

    def test_budget_enforced(self):
        s = AdaptiveRRRStore(1000, policy=None, budget_bytes=100)
        s.append(np.arange(20))  # 80 bytes
        with pytest.raises(OutOfMemoryModelError) as exc:
            s.append(np.arange(20))
        assert exc.value.budget_bytes == 100
        assert exc.value.required_bytes > 100

    def test_adaptive_fits_where_lists_oom(self):
        # The Table III Twitter7 mechanism at miniature scale: dense sets as
        # bitmaps fit a budget that sorted vectors exceed.
        n, dense = 4096, np.arange(3000)
        budget = 8 * (n // 8 + 1)  # room for ~8 bitmaps
        ripples = AdaptiveRRRStore(n, policy=None, budget_bytes=budget)
        eimm = AdaptiveRRRStore(n, policy=AdaptivePolicy(), budget_bytes=budget)
        with pytest.raises(OutOfMemoryModelError):
            for _ in range(8):
                ripples.append(dense)
        for _ in range(8):
            eimm.append(dense)
        assert len(eimm) == 8

    def test_to_flat_roundtrip(self):
        s = AdaptiveRRRStore(320)
        s.append(np.array([5, 2, 9]))
        s.append(np.arange(150))
        flat = s.to_flat()
        assert len(flat) == 2
        assert sorted(flat.get(0).tolist()) == [2, 5, 9]
        assert flat.get(1).size == 150

    def test_nbytes_accumulates(self):
        s = AdaptiveRRRStore(1000, policy=None)
        s.append(np.arange(10))
        s.append(np.arange(20))
        assert s.nbytes() == 40 + 80

    def test_getitem_and_iter(self):
        s = AdaptiveRRRStore(100)
        s.append(np.array([1]))
        assert s[0].size == 1
        assert len(list(s)) == 1


class TestPartitionedRRRStore:
    def test_append_routes_to_worker(self):
        s = PartitionedRRRStore(10, 3)
        s.append(0, np.array([1]))
        s.append(2, np.array([2, 3]))
        assert len(s.parts[0]) == 1
        assert len(s.parts[1]) == 0
        assert len(s.parts[2]) == 1
        assert len(s) == 2

    def test_total_entries(self):
        s = PartitionedRRRStore(10, 2)
        s.append(0, np.array([1, 2]))
        s.append(1, np.array([3]))
        assert s.total_entries == 3

    def test_merge_gathers_everything(self):
        s = PartitionedRRRStore(10, 2)
        s.append(0, np.array([1, 2]))
        s.append(1, np.array([3]))
        merged = s.merge()
        assert len(merged) == 2
        assert merged.total_entries == 3

    def test_vertex_counts_match_merged(self):
        s = PartitionedRRRStore(6, 3)
        rng = np.random.default_rng(1)
        for i in range(12):
            s.append(i % 3, rng.integers(0, 6, size=4))
        assert np.array_equal(s.vertex_counts(), s.merge().vertex_counts())

    def test_rejects_zero_workers(self):
        with pytest.raises(ParameterError):
            PartitionedRRRStore(10, 0)

    def test_len_iter_get_agree_with_merge(self):
        """len/iteration/get use worker-concatenated order — merge()'s order."""
        s = PartitionedRRRStore(10, 3)
        rng = np.random.default_rng(5)
        for i in range(11):
            s.append(i % 3, rng.integers(0, 10, size=rng.integers(1, 5)))
        merged = s.merge()
        assert len(s) == len(merged)
        assert len(list(s)) == len(s)
        for i, (mine, via_iter) in enumerate(zip(range(len(s)), s)):
            assert np.array_equal(s.get(i), merged.get(i))
            assert np.array_equal(via_iter, merged.get(i))
        assert s.sizes().tolist() == merged.sizes().tolist()

    def test_merge_preserves_sort_sets(self):
        s = PartitionedRRRStore(10, 2, sort_sets=True)
        s.append(0, np.array([3, 1, 2]))
        merged = s.merge()
        assert merged.sort_sets is True
        assert merged.get(0).tolist() == [1, 2, 3]

    def test_append_out_of_range_worker_raises(self):
        s = PartitionedRRRStore(10, 3)
        with pytest.raises(IndexError, match="out of range"):
            s.append(3, np.array([1]))
        with pytest.raises(IndexError, match="out of range"):
            s.append(-1, np.array([1]))
        assert len(s) == 0, "failed append must not land anywhere"

    def test_merge_with_empty_partitions(self):
        """Workers that produced nothing must not shift merged ordering."""
        s = PartitionedRRRStore(10, 4)
        s.append(1, np.array([5]))
        s.append(3, np.array([6, 7]))
        merged = s.merge()
        assert len(merged) == 2
        assert merged.get(0).tolist() == [5]
        assert merged.get(1).tolist() == [6, 7]
        assert s.sizes().tolist() == [1, 2]

    def test_all_empty_round_trip(self):
        s = PartitionedRRRStore(10, 3)
        assert len(s) == 0 and s.total_entries == 0
        assert list(s) == []
        assert s.sizes().tolist() == []
        assert len(s.merge()) == 0
        with pytest.raises(IndexError):
            s.get(0)

    def test_single_partition_degenerate_plan(self):
        """num_workers=1 must behave exactly like a flat store."""
        s = PartitionedRRRStore(10, 1)
        flat = FlatRRRStore(10)
        rng = np.random.default_rng(7)
        for _ in range(9):
            verts = rng.integers(0, 10, size=rng.integers(1, 5))
            s.append(0, verts)
            flat.append(verts)
        assert len(s) == len(flat)
        for i in range(len(s)):
            assert np.array_equal(s.get(i), flat.get(i))
        assert [v.tolist() for v in s] == [v.tolist() for v in flat]
        assert s.sizes().tolist() == flat.sizes().tolist()
        assert np.array_equal(s.merge().vertices, flat.vertices[: flat.total_entries])

    def test_trim_and_capacity_bytes(self):
        s = PartitionedRRRStore(10, 2)
        s.append(0, np.array([1, 2]))
        s.append(1, np.array([3]))
        before = s.capacity_bytes()
        assert s.trim() is s
        after = s.capacity_bytes()
        assert after <= before
        assert after >= s.nbytes() or s.nbytes() == 0
        assert len(s) == 2 and s.total_entries == 3


class TestFlatStoreAccessors:
    def test_trim_releases_slack(self):
        s = FlatRRRStore(100)
        for _ in range(50):
            s.append(np.arange(7))
        assert s.capacity_bytes() > s.nbytes()  # amortised growth left slack
        before = [s.get(i).copy() for i in range(len(s))]
        assert s.trim() is s
        assert s.capacity_bytes() == s.nbytes()
        for i, x in enumerate(before):
            assert np.array_equal(s.get(i), x)
        s.append(np.array([1, 2]))  # still appendable after trim
        assert len(s) == 51

    def test_from_arrays_roundtrip(self):
        s = FlatRRRStore(10, sort_sets=True)
        s.extend([np.array([3, 1]), np.array([5])])
        s2 = FlatRRRStore.from_arrays(
            10, s.offsets, s.vertices, sort_sets=True
        )
        assert len(s2) == len(s)
        assert np.array_equal(s2.vertices, s.vertices)
        # from_arrays copies: mutating the source store must not alias.
        s.append(np.array([9]))
        assert len(s2) == 2

    @pytest.mark.parametrize(
        "offsets",
        [
            [1, 2],          # does not start at 0
            [0, 3, 2],       # decreasing
            [0, 1],          # does not end at len(vertices)
        ],
    )
    def test_from_arrays_rejects_bad_offsets(self, offsets):
        with pytest.raises(ParameterError):
            FlatRRRStore.from_arrays(
                10,
                np.asarray(offsets, dtype=np.int64),
                np.array([1, 2], dtype=np.int32),
            )


class TestInvertedIndex:
    def make_random(self, seed=0, n=50, sets=60):
        s = FlatRRRStore(n)
        rng = np.random.default_rng(seed)
        for _ in range(sets):
            size = int(rng.integers(0, 12))
            s.append(rng.choice(n, size=size, replace=False))
        return s

    def test_index_matches_linear_scan(self):
        s = self.make_random()
        for v in range(s.num_vertices):
            assert np.array_equal(
                s.sets_containing(v),
                s.sets_containing(v, use_index=False),
            )

    def test_index_built_lazily_and_reused(self):
        s = self.make_random()
        assert s._index is None
        s.sets_containing(0)
        assert s._index is not None
        idx = s._index
        s.sets_containing(3)
        assert s._index is idx  # no rebuild between queries

    def test_out_of_range_vertex_empty(self):
        s = self.make_random()
        assert s.sets_containing(-1).size == 0
        assert s.sets_containing(s.num_vertices).size == 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.append(np.array([1, 2])),
            lambda s: s.extend([np.array([3])]),
            lambda s: s.trim(),
            lambda s: s.replace_sets(np.array([0]), [np.array([4])]),
        ],
    )
    def test_mutation_invalidates_index(self, mutate):
        s = self.make_random()
        s.sets_containing(0)
        mutate(s)
        assert s._index is None
        # And the rebuilt index answers correctly post-mutation.
        for v in range(s.num_vertices):
            assert np.array_equal(
                s.sets_containing(v), s.sets_containing(v, use_index=False)
            )

    def test_empty_store(self):
        s = FlatRRRStore(10)
        assert s.sets_containing(3).size == 0


class TestReplaceSets:
    def test_same_size_replacement(self):
        s = FlatRRRStore(10)
        s.extend([np.array([0, 1]), np.array([2, 3]), np.array([4, 5])])
        s.replace_sets(np.array([1]), [np.array([7, 8])])
        assert s.get(0).tolist() == [0, 1]
        assert s.get(1).tolist() == [7, 8]
        assert s.get(2).tolist() == [4, 5]

    def test_size_changing_replacement(self):
        s = FlatRRRStore(10)
        s.extend([np.array([0, 1]), np.array([2, 3]), np.array([4, 5])])
        s.replace_sets(
            np.array([0, 2]), [np.array([9]), np.array([6, 7, 8])]
        )
        assert s.get(0).tolist() == [9]
        assert s.get(1).tolist() == [2, 3]
        assert s.get(2).tolist() == [6, 7, 8]
        assert s.total_entries == 6
        assert s.offsets.tolist() == [0, 1, 3, 6]

    def test_empty_replacement_set(self):
        s = FlatRRRStore(10)
        s.extend([np.array([0, 1]), np.array([2])])
        s.replace_sets(np.array([0]), [np.array([], dtype=np.int32)])
        assert s.get(0).size == 0
        assert s.get(1).tolist() == [2]

    def test_honours_sort_sets(self):
        s = FlatRRRStore(10, sort_sets=True)
        s.append(np.array([1, 2]))
        s.replace_sets(np.array([0]), [np.array([9, 3, 7])])
        assert s.get(0).tolist() == [3, 7, 9]

    def test_no_indices_is_noop(self):
        s = FlatRRRStore(10)
        s.append(np.array([1]))
        assert s.replace_sets(np.array([], dtype=np.int64), []) is s
        assert s.get(0).tolist() == [1]

    def test_vertex_counts_consistent_after_replace(self):
        s = FlatRRRStore(10)
        rng = np.random.default_rng(3)
        for _ in range(20):
            s.append(rng.choice(10, size=4, replace=False))
        s.replace_sets(
            np.array([2, 5, 19]),
            [rng.choice(10, size=k, replace=False) for k in (1, 6, 3)],
        )
        manual = np.bincount(s.vertices, minlength=10)
        assert np.array_equal(s.vertex_counts(), manual)

    @pytest.mark.parametrize(
        "indices,sets",
        [
            (np.array([1, 1]), [np.array([1]), np.array([2])]),  # not increasing
            (np.array([2, 1]), [np.array([1]), np.array([2])]),  # decreasing
            (np.array([5]), [np.array([1])]),                    # out of range
            (np.array([-1]), [np.array([1])]),                   # negative
            (np.array([0]), []),                                 # length mismatch
        ],
    )
    def test_validation(self, indices, sets):
        s = FlatRRRStore(10)
        s.extend([np.array([0]), np.array([1]), np.array([2])])
        with pytest.raises(ParameterError):
            s.replace_sets(indices, sets)

    def test_appendable_after_replace(self):
        s = FlatRRRStore(10)
        s.extend([np.array([0]), np.array([1])])
        s.replace_sets(np.array([0]), [np.array([5, 6])])
        s.append(np.array([7]))
        assert len(s) == 3
        assert s.get(2).tolist() == [7]


class TestStoreProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 49), min_size=0, max_size=30),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_flat_store_preserves_multiset(self, sets):
        s = FlatRRRStore(50)
        for x in sets:
            s.append(np.asarray(x, dtype=np.int32))
        manual = np.zeros(50, dtype=np.int64)
        for x in sets:
            for v in x:
                manual[v] += 1
        assert np.array_equal(s.vertex_counts(), manual)

    @given(
        st.lists(
            st.lists(st.integers(0, 49), min_size=0, max_size=30),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_offsets_consistent(self, sets):
        s = FlatRRRStore(50)
        for x in sets:
            s.append(np.asarray(x, dtype=np.int32))
        assert s.offsets[-1] == s.total_entries
        assert np.array_equal(np.diff(s.offsets), [len(x) for x in sets])
