"""repro.telemetry: instruments, merge protocol, tracing, and the golden
end-to-end consistency test (ISSUE 1 acceptance criteria)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import EfficientIMM, IMMParams, telemetry
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
)
from repro.telemetry.export import bench_payload


# ------------------------------------------------------------- instruments
class TestInstruments:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 7.0

    def test_name_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(KeyError):
            reg.gauge("x")

    def test_histogram_percentiles_uniform(self):
        h = Histogram()
        values = [i / 1000 for i in range(1, 1001)]  # 1ms .. 1s
        for v in values:
            h.observe(v)
        assert h.count == 1000
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(1.0)
        # Geometric buckets (base 2^0.25): <= ~19% relative error.
        assert h.percentile(0.5) == pytest.approx(0.5, rel=0.2)
        assert h.percentile(0.95) == pytest.approx(0.95, rel=0.2)
        assert h.percentile(0.99) == pytest.approx(0.99, rel=0.2)
        assert h.percentile(0.0) >= h.min
        assert h.percentile(1.0) <= h.max

    def test_histogram_empty_and_roundtrip(self):
        h = Histogram()
        assert h.percentile(0.5) == 0.0
        h.observe(0.25)
        h2 = Histogram.from_dict(h.to_dict())
        assert h2.count == 1 and h2.sum == pytest.approx(0.25)

    def test_histogram_tiny_values_clamp_to_floor_bucket(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(1e-12)
        assert h.counts == {0: 2}


class TestThreadSafety:
    """Instruments are mutated from gateway handler threads and the engine
    executor concurrently; `+=` on a Python float is not atomic (it is a
    read-modify-write across bytecodes), so these hammers would lose
    updates without the per-instrument locks."""

    def _hammer(self, fn, threads=8, iters=10_000):
        import threading

        barrier = threading.Barrier(threads)

        def run():
            barrier.wait()  # maximise interleaving
            for _ in range(iters):
                fn()

        ts = [threading.Thread(target=run) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        return threads * iters

    def test_counter_increments_are_exact(self):
        reg = MetricsRegistry()
        c = reg.counter("hammered")
        total = self._hammer(c.inc)
        assert c.value == total

    def test_histogram_observations_are_exact(self):
        h = Histogram()
        total = self._hammer(lambda: h.observe(0.01), threads=4, iters=5_000)
        assert h.count == total
        assert h.sum == pytest.approx(total * 0.01)

    def test_snapshot_during_concurrent_observes(self):
        import threading

        h = Histogram()
        stop = threading.Event()

        def write():
            while not stop.is_set():
                h.observe(0.5)

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for _ in range(200):
                doc = h.to_dict()
                # A snapshot must be internally consistent: the bucket
                # counts always sum to the reported count.
                assert sum(doc["counts"].values()) == doc["count"]
                assert h.percentile(0.5) >= 0.0
        finally:
            stop.set()
            writer.join()

    def test_gauge_set_from_threads_is_one_written_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        values = list(range(16))
        self._hammer(lambda: g.set(values[0]), threads=2, iters=10)
        import threading

        ts = [
            threading.Thread(target=lambda v=v: g.set(v)) for v in values
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert g.value in values


# ----------------------------------------------------------- merge protocol
class TestMergeProtocol:
    def test_merge_snapshots_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 5.0
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(3.0)

    def test_diff_snapshots_is_the_delta(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        reg.histogram("h").observe(1.0)
        before = reg.snapshot()
        reg.counter("n").inc(2)
        reg.counter("fresh").inc()
        reg.histogram("h").observe(4.0)
        delta = diff_snapshots(reg.snapshot(), before)
        assert delta["counters"] == {"n": 2.0, "fresh": 1.0}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == pytest.approx(4.0)

    def test_diff_then_merge_roundtrips(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(10)
        before = reg.snapshot()
        reg.counter("n").inc(7)
        base = MetricsRegistry()
        base.counter("n").inc(10)
        base.merge_snapshot(diff_snapshots(reg.snapshot(), before))
        assert base.snapshot()["counters"]["n"] == 17.0


# ----------------------------------------------------------------- tracing
class TestTracing:
    def test_span_nesting_and_durations(self):
        with telemetry.session() as tel:
            with tel.span("outer", label="x"):
                with tel.span("inner"):
                    pass
        (outer,) = tel.tracer.find("outer")
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.duration_s >= outer.children[0].duration_s >= 0.0
        assert outer.attrs["label"] == "x"

    def test_chrome_trace_event_format(self):
        with telemetry.session() as tel:
            with tel.span("a"):
                with tel.span("b"):
                    pass
        doc = tel.tracer.to_chrome_trace()
        text = json.dumps(doc)  # must be valid JSON
        assert "traceEvents" in json.loads(text)
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0.0 and ev["ts"] >= 0.0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)

    def test_disabled_span_is_noop(self):
        assert not telemetry.is_enabled()
        with telemetry.span("nothing"):
            pass
        assert telemetry.get().tracer.roots == []

    def test_traced_decorator(self):
        @telemetry.traced("decorated.fn")
        def fn(x):
            return x * 2

        assert fn(2) == 4  # disabled: no span
        with telemetry.session() as tel:
            assert fn(3) == 6
        assert len(tel.tracer.find("decorated.fn")) == 1

    def test_memory_session_attributes_tracemalloc(self):
        with telemetry.session(memory=True) as tel:
            with tel.span("alloc"):
                _ = [0] * 50_000
        (span,) = tel.tracer.find("alloc")
        assert span.attrs["mem_peak_bytes"] > 0


# ------------------------------------------------------------ golden e2e
class TestGoldenEfficientIMM:
    @pytest.fixture(scope="class")
    def run(self, amazon_ic):
        with telemetry.session() as tel:
            result = EfficientIMM(amazon_ic).run(
                IMMParams(k=5, epsilon=0.5, theta_cap=400, seed=0)
            )
        return tel, result

    def test_span_tree_contains_phases(self, run):
        tel, _ = run
        (root,) = tel.tracer.find("imm.run")
        names = {s.name for s in root.iter_tree()}
        assert {"imm.run", "imm.sampling", "imm.selection"} <= names
        # Sampling and selection are children of the run span, and the
        # final selection phase is present.
        phases = [s.attrs.get("phase") for s in root.find("imm.selection")]
        assert "final" in phases

    def test_counters_agree_with_result(self, run):
        tel, result = run
        snap = tel.snapshot()
        c, g = snap["counters"], snap["gauges"]
        assert g["imm.theta"] == result.theta
        assert g["imm.num_rrrsets"] == result.num_rrrsets
        assert g["imm.k"] == result.params.k
        assert g["imm.num_seeds"] == result.seeds.size == result.params.k
        # RRR sets recorded by the sampler == sketch store size == result.
        assert c["sampling.rrr_sets"] == result.num_rrrsets
        assert g["sketch.store.sets"] == result.num_rrrsets
        assert snap["histograms"]["sampling.set_size"]["count"] == result.num_rrrsets

    def test_counters_non_negative_and_consistent(self, run):
        tel, result = run
        snap = tel.snapshot()
        assert all(v >= 0 for v in snap["counters"].values())
        assert all(
            math.isfinite(v) for v in snap["gauges"].values()
        )
        c = snap["counters"]
        assert c["imm.martingale_rounds"] >= 1
        # Every selection round used exactly one update method.
        methods = sum(
            v for k, v in c.items() if k.startswith("selection.method.")
        )
        assert methods == c["selection.rounds"]
        # The wall-clock phase breakdown matches the result's StageTimes.
        assert c["phase.generate_rrrsets_s"] == pytest.approx(
            result.times.stages["Generate_RRRsets"]
        )

    def test_chrome_trace_and_metrics_export(self, run, tmp_path):
        tel, result = run
        paths = telemetry.write_report(tmp_path, tel, run={"dataset": "amazon"})
        metrics = json.loads(paths["metrics"].read_text())
        assert metrics["schema"] == "repro-telemetry/1"
        assert metrics["gauges"]["imm.theta"] == result.theta
        trace = json.loads(paths["trace"].read_text())
        assert trace["traceEvents"]
        assert trace["spanTree"]["spans"][0]["name"] == "imm.run"


# ------------------------------------------- simulated vs real: one schema
class TestUnifiedSchema:
    def test_serial_and_multiprocess_emit_same_sampling_names(self, amazon_ic):
        from repro.core.parallel_sampling import parallel_generate
        from repro.runtime.backends import SerialBackend

        with telemetry.session() as tel_serial:
            parallel_generate(
                amazon_ic, "IC", 20, num_workers=2, seed=3,
                backend=SerialBackend(),
            )
        with telemetry.session() as tel_mp:
            parallel_generate(amazon_ic, "IC", 20, num_workers=2, seed=3)

        s_ser, s_mp = tel_serial.snapshot(), tel_mp.snapshot()
        shared = {"sampling.rrr_sets", "sampling.edges_examined", "runtime.tasks"}
        assert shared <= set(s_ser["counters"])
        assert shared <= set(s_mp["counters"])
        # Identical seeds => identical sampled work, whatever the backend.
        for name in ("sampling.rrr_sets", "sampling.edges_examined"):
            assert s_ser["counters"][name] == s_mp["counters"][name]
        # Only backend-specific fields may differ in kind.
        assert s_mp["counters"]["runtime.reduce_s"] >= 0.0

    def test_simmachine_counters_share_registry(self, amazon_ic):
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model
        from repro.simmachine.instrumented import trace_efficient_selection
        from repro.simmachine.topology import perlmutter

        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=0
        )
        sampler.extend(50)
        with telemetry.session() as tel:
            trace_efficient_selection(sampler.store, 3, 2, perlmutter())
        c = tel.snapshot()["counters"]
        assert c["cache.efficientimm.selection.l1_hits"] > 0
        assert c["cache.efficientimm.selection.l1_misses"] >= 0


# --------------------------------------------------------------- bench JSON
def test_bench_payload_schema():
    reg = MetricsRegistry()
    reg.counter("x").inc(2)
    doc = bench_payload("unit", reg, fields={"threads": 8})
    assert doc["schema"] == "repro-bench/1"
    assert doc["bench"] == "unit"
    assert doc["fields"]["threads"] == 8
    assert doc["metrics"]["counters"]["x"] == 2.0
    json.dumps(doc)  # serialisable
