"""Golden regression tests: pinned outputs of canonical runs.

These pin the exact seeds/statistics produced by fixed-seed runs on the
canonical replicas.  They exist to catch *unintentional* changes to RNG
consumption order, dataset generation, or kernel semantics — any of which
silently changes every experiment.  If a change is intentional (e.g. a
sampler draws in a different order), regenerate the constants with the
printing snippet in each test's docstring and say so in the commit.
"""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams, RipplesIMM
from repro.graph.datasets import load_dataset


class TestGoldenDatasets:
    def test_replica_shapes_pinned(self):
        expected = {
            "amazon": (3400, 12964),
            "dblp": (3200, 11684),
            "youtube": (11000, 33518),
            "livejournal": (8000, 33434),
            "pokec": (6000, 23962),
            "skitter": (4000, 54980),
            "google": (8192, 43542),
            "twitter7": (16384, 542498),
        }
        for name, (n, m) in expected.items():
            g = load_dataset(name, seed=0)
            assert (g.num_vertices, g.num_edges) == (n, m), name

    def test_amazon_edge_checksum(self):
        """Fingerprint of the canonical amazon topology.

        Regenerate:  python -c "from repro.graph.datasets import \
        load_dataset; import numpy as np; g = load_dataset('amazon', \
        seed=0); print(int(g.indices.astype(np.int64).sum() % \
        1_000_000_007))"
        """
        g = load_dataset("amazon", seed=0)
        checksum = int(g.indices.astype(np.int64).sum() % 1_000_000_007)
        assert checksum == 21879396

    def test_ic_probs_fingerprint(self, amazon_ic):
        # Mean of canonical IC weights is deterministic.
        assert amazon_ic.probs.mean() == pytest.approx(0.5, abs=0.02)


class TestGoldenRuns:
    def test_skitter_canonical_seeds(self):
        """Pinned: EfficientIMM(skitter, k=10, theta_cap=500, seed=1).

        Regenerate:  python -m repro run skitter --model IC --k 10
                     --theta-cap 500 --seed 1
        """
        g = load_dataset("skitter", model="IC", seed=1)
        res = EfficientIMM(g).run(IMMParams(k=10, theta_cap=500, seed=1))
        # Both frameworks agree, deterministically, forever.
        res2 = RipplesIMM(g).run(IMMParams(k=10, theta_cap=500, seed=1))
        assert np.array_equal(res.seeds, res2.seeds)
        assert res.num_rrrsets == 500
        # Coverage fraction is a pure function of the pinned RNG stream.
        assert 0.3 < res.coverage_fraction < 0.9

    def test_run_is_bit_stable_across_invocations(self):
        g = load_dataset("google", model="IC", seed=0)
        params = IMMParams(k=6, theta_cap=300, seed=42)
        runs = [EfficientIMM(g).run(params) for _ in range(3)]
        for r in runs[1:]:
            assert np.array_equal(r.seeds, runs[0].seeds)
            assert r.coverage_fraction == runs[0].coverage_fraction
            assert r.num_rrrsets == runs[0].num_rrrsets

    def test_profile_pair_stable(self):
        from repro.simmachine.cost import profile_pair

        g = load_dataset("skitter", model="IC", seed=0)
        a = profile_pair(g, "skitter", "IC", k=5, theta_cap=200, seed=0)
        b = profile_pair(g, "skitter", "IC", k=5, theta_cap=200, seed=0)
        for fw in ("Ripples", "EfficientIMM"):
            assert a[fw].num_sets == b[fw].num_sets
            assert a[fw].selection.partitioned_ops == b[fw].selection.partitioned_ops
            assert np.array_equal(a[fw].per_set_costs, b[fw].per_set_costs)
