"""Tests for Monte-Carlo spread estimation."""

import numpy as np
import pytest

from repro.diffusion.ic import ICModel
from repro.diffusion.spread import estimate_spread

from conftest import make_graph


class TestEstimateSpread:
    def test_deterministic_graph_exact(self, line_graph):
        model = ICModel(line_graph)
        est = estimate_spread(model, np.array([0]), num_samples=20, seed=0)
        assert est.mean == 5.0
        assert est.stderr == 0.0

    def test_isolated_seed(self, isolated_graph):
        model = ICModel(isolated_graph)
        est = estimate_spread(model, np.array([3]), num_samples=10, seed=0)
        assert est.mean == 1.0

    def test_expected_value_single_edge(self):
        g = make_graph([(0, 1, 0.5)], n=2)
        model = ICModel(g)
        est = estimate_spread(model, np.array([0]), num_samples=4000, seed=1)
        assert est.mean == pytest.approx(1.5, abs=0.05)

    def test_confidence_interval_contains_mean(self):
        g = make_graph([(0, 1, 0.5)], n=2)
        model = ICModel(g)
        est = estimate_spread(model, np.array([0]), num_samples=500, seed=2)
        lo, hi = est.confidence_interval()
        assert lo <= est.mean <= hi
        assert lo <= 1.5 <= hi  # true value inside the 95% CI

    def test_monotone_in_seeds(self, two_triangles):
        model = ICModel(two_triangles)
        one = estimate_spread(model, np.array([0]), num_samples=50, seed=3)
        two = estimate_spread(model, np.array([0, 3]), num_samples=50, seed=3)
        assert two.mean > one.mean

    def test_determinism_by_seed(self, diamond_graph):
        model = ICModel(diamond_graph)
        a = estimate_spread(model, np.array([0]), num_samples=100, seed=9)
        b = estimate_spread(model, np.array([0]), num_samples=100, seed=9)
        assert a.mean == b.mean

    def test_rejects_zero_samples(self, line_graph):
        model = ICModel(line_graph)
        with pytest.raises(ValueError):
            estimate_spread(model, np.array([0]), num_samples=0)

    def test_num_samples_recorded(self, line_graph):
        model = ICModel(line_graph)
        est = estimate_spread(model, np.array([0]), num_samples=17, seed=0)
        assert est.num_samples == 17
