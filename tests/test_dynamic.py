"""Tests for repro.dynamic: delta graphs, incremental maintenance, serving."""

import json

import numpy as np
import pytest

from repro.dynamic import (
    DeltaGraph,
    DynamicService,
    EdgeUpdate,
    IncrementalMaintainer,
    iter_update_stream,
    parse_update_line,
)
from repro.errors import ArtifactError, ParameterError, ReproError
from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.io import graph_fingerprint

from conftest import make_graph


def random_graph(n=80, m=320, seed=7, p=0.3):
    src, dst = erdos_renyi(n, m, seed=seed)
    return from_edge_array(src, dst, p, num_vertices=n)


# --------------------------------------------------------------- DeltaGraph
class TestDeltaGraphStaging:
    def test_unknown_op_rejected(self, line_graph):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError):
            d.stage(EdgeUpdate("upsert", 0, 1, 0.5))

    @pytest.mark.parametrize("src,dst", [(-1, 2), (0, 99), (99, 0)])
    def test_out_of_range_rejected(self, line_graph, src, dst):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError):
            d.stage(EdgeUpdate("insert", src, dst, 0.5))

    def test_self_loop_rejected(self, line_graph):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError, match="self-loop"):
            d.stage(EdgeUpdate("insert", 2, 2, 0.5))

    def test_delete_with_prob_rejected(self, line_graph):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError):
            d.stage(EdgeUpdate("delete", 0, 1, 0.5))

    def test_insert_without_prob_rejected(self, line_graph):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError):
            d.stage(EdgeUpdate("insert", 0, 2))

    @pytest.mark.parametrize("p", [-0.1, 1.5, float("nan")])
    def test_prob_domain_rejected(self, line_graph, p):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError):
            d.stage(EdgeUpdate("insert", 0, 2, p))

    def test_stage_does_not_mutate(self, line_graph):
        d = DeltaGraph(line_graph)
        d.insert(0, 2, 0.5)
        assert not d.has_edge(0, 2)
        assert d.epoch == 0
        assert d.pending_count == 1


class TestDeltaGraphCommit:
    def test_empty_commit_rejected(self, line_graph):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError, match="no staged"):
            d.commit()

    def test_insert_delete_reweight(self, line_graph):
        d = DeltaGraph(line_graph)
        d.insert(0, 2, 0.5)
        d.delete(0, 1)
        d.reweight(1, 2, 0.25)
        info = d.commit()
        assert d.epoch == 1 and info.epoch == 1
        assert d.has_edge(0, 2) and d.prob(0, 2) == 0.5
        assert not d.has_edge(0, 1)
        assert d.prob(1, 2) == 0.25
        assert info.inserted.tolist() == [[0, 2]]
        assert info.deleted.tolist() == [[0, 1]]
        assert info.reweighted.tolist() == [[1, 2]]
        assert info.ignored == 0

    def test_ignored_categories(self, line_graph):
        d = DeltaGraph(line_graph)
        d.delete(0, 2)  # absent
        d.reweight(0, 3, 0.5)  # absent
        d.insert(0, 4, 0.5)
        d.delete(0, 4)  # cancels the insert
        d.reweight(0, 1, 1.0)  # identical probability
        info = d.commit()
        assert info.num_changes == 0
        assert info.ignored == 4
        assert d.epoch == 1

    def test_insert_existing_is_reweight(self, line_graph):
        d = DeltaGraph(line_graph)
        d.insert(0, 1, 0.75)
        info = d.commit()
        assert info.inserted.shape[0] == 0
        assert info.reweighted.tolist() == [[0, 1]]
        assert d.prob(0, 1) == 0.75

    def test_sequential_resolution_within_batch(self, line_graph):
        d = DeltaGraph(line_graph)
        d.delete(0, 1)
        d.insert(0, 1, 0.5)  # delete then re-insert: net reweight
        info = d.commit()
        assert info.deleted.shape[0] == 0
        assert info.reweighted.tolist() == [[0, 1]]

    def test_commit_info_endpoints(self, line_graph):
        d = DeltaGraph(line_graph)
        d.insert(0, 2, 0.5)
        d.delete(3, 4)
        info = d.commit()
        assert info.structural_dsts().tolist() == [4]
        assert info.all_dsts().tolist() == [2, 4]

    def test_compact_matches_builder(self):
        g = random_graph()
        d = DeltaGraph(g)
        d.insert(0, 5, 0.4)
        src, dst, probs = g.edge_array()
        d.delete(int(src[0]), int(dst[0]))
        d.commit()
        # Rebuild the same edge set through the builder and compare.
        keep = np.ones(src.size, dtype=bool)
        keep[0] = False
        ref = from_edge_array(
            np.concatenate([src[keep], [0]]),
            np.concatenate([dst[keep], [5]]),
            np.concatenate([probs[keep], [0.4]]),
            num_vertices=g.num_vertices,
        )
        assert graph_fingerprint(d.compact()) == graph_fingerprint(ref)

    def test_compact_cached_per_epoch(self, line_graph):
        d = DeltaGraph(line_graph)
        assert d.compact() is d.compact()
        before = d.compact()
        d.insert(0, 2, 0.5)
        d.commit()
        assert d.compact() is not before

    def test_fingerprint_changes_per_epoch(self, line_graph):
        d = DeltaGraph(line_graph)
        fp0 = d.fingerprint()
        assert fp0 == d.base_fingerprint
        d.insert(0, 2, 0.5)
        d.commit()
        assert d.fingerprint() != fp0

    def test_base_graph_not_mutated(self, line_graph):
        edges_before = list(line_graph.iter_edges())
        d = DeltaGraph(line_graph)
        d.apply_batch([EdgeUpdate("delete", 0, 1)])
        assert list(line_graph.iter_edges()) == edges_before


# ----------------------------------------------------- IncrementalMaintainer
@pytest.fixture
def maintained():
    """A built maintainer over a random IC graph (small but non-trivial)."""
    d = DeltaGraph(random_graph())
    m = IncrementalMaintainer(d, num_sets=200, seed=3)
    return d, m


def batch(d, rng, size=8):
    """Stage a mixed batch of valid random updates against ``d``."""
    n = d.num_vertices
    src, dst, _ = d.compact().edge_array()
    staged = 0
    while staged < size:
        kind = rng.integers(0, 3)
        if kind == 0 or src.size == 0:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u == v or d.has_edge(u, v):
                continue
            d.insert(u, v, float(rng.random()))
        elif kind == 1:
            j = int(rng.integers(0, src.size))
            if not d.has_edge(int(src[j]), int(dst[j])):
                continue
            d.delete(int(src[j]), int(dst[j]))
        else:
            j = int(rng.integers(0, src.size))
            d.reweight(int(src[j]), int(dst[j]), float(rng.random()))
        staged += 1
    return d.commit()


class TestMaintainerValidation:
    def test_bad_params(self, line_graph):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError):
            IncrementalMaintainer(d, num_sets=0)
        with pytest.raises(ParameterError):
            IncrementalMaintainer(d, full_resample_threshold=0.0)
        with pytest.raises(ParameterError):
            IncrementalMaintainer(d, repair="patch")

    def test_empty_graph_rejected(self, empty_graph):
        with pytest.raises(ParameterError):
            IncrementalMaintainer(DeltaGraph(empty_graph))

    def test_epoch_order_enforced(self, maintained):
        d, m = maintained
        d.insert(0, 5, 0.5)
        info = d.commit()
        m.apply(info)
        with pytest.raises(ParameterError, match="in order"):
            m.apply(info)  # same epoch twice

    def test_requires_committed_delta(self, maintained):
        from repro.dynamic.delta import CommitInfo

        d, m = maintained
        d.insert(0, 5, 0.5)
        m.apply(d.commit())
        # A commit claiming an epoch the delta graph has not reached yet.
        ahead = CommitInfo(
            epoch=d.epoch + 1,
            inserted=np.empty((0, 2), dtype=np.int32),
            inserted_probs=np.empty(0),
            deleted=np.empty((0, 2), dtype=np.int32),
            reweighted=np.empty((0, 2), dtype=np.int32),
            reweighted_probs=np.empty(0),
            ignored=0,
        )
        with pytest.raises(ParameterError, match="commit the batch"):
            m.apply(ahead)


class TestMaintainerRepair:
    def test_counter_matches_store_after_repairs(self, maintained):
        d, m = maintained
        rng = np.random.default_rng(11)
        for _ in range(4):
            m.apply(batch(d, rng))
            assert np.array_equal(m.counter, m.store.vertex_counts())
            assert m.epoch == d.epoch

    def test_deterministic_byte_identical(self):
        stores = []
        for _ in range(2):
            d = DeltaGraph(random_graph())
            m = IncrementalMaintainer(d, num_sets=150, seed=9)
            rng = np.random.default_rng(21)
            for _ in range(3):
                m.apply(batch(d, rng))
            stores.append(m)
        a, b = stores
        assert np.array_equal(a.store.vertices, b.store.vertices)
        assert np.array_equal(a.store.offsets, b.store.offsets)
        assert np.array_equal(a.counter, b.counter)
        assert np.array_equal(a.roots, b.roots)

    def test_insert_only_batch_extends_not_resamples(self, maintained):
        d, m = maintained
        rng = np.random.default_rng(5)
        n = d.num_vertices
        for _ in range(6):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v and not d.has_edge(u, v):
                d.insert(u, v, 0.5)
        if d.pending_count == 0:
            d.insert(0, 5, 0.5)
        report = m.apply(d.commit())
        assert report.mode == "repair"
        assert report.invalidated == 0  # inserts never resample under IC
        assert np.array_equal(m.counter, m.store.vertex_counts())

    def test_threshold_forces_full_rebuild(self):
        d = DeltaGraph(random_graph())
        m = IncrementalMaintainer(
            d, num_sets=100, seed=2, full_resample_threshold=0.01
        )
        src, dst, _ = d.compact().edge_array()
        for j in range(10):
            d.delete(int(src[j]), int(dst[j]))
        report = m.apply(d.commit())
        assert report.mode == "full"
        assert report.invalidated == m.num_sets
        assert m.epoch == d.epoch
        assert np.array_equal(m.counter, m.store.vertex_counts())

    def test_resample_mode_never_extends(self):
        d = DeltaGraph(random_graph())
        m = IncrementalMaintainer(d, num_sets=100, seed=2, repair="resample")
        d.insert(0, 5, 0.9)
        d.insert(1, 7, 0.9)
        report = m.apply(d.commit())
        assert report.extended == 0
        assert np.array_equal(m.counter, m.store.vertex_counts())

    def test_lt_always_resamples(self):
        d = DeltaGraph(random_graph(p=0.2))
        m = IncrementalMaintainer(d, model="LT", num_sets=80, seed=4)
        d.insert(0, 5, 0.2)
        report = m.apply(d.commit())
        assert report.extended == 0
        assert np.array_equal(m.counter, m.store.vertex_counts())

    def test_extension_members_preserved(self, maintained):
        """Extensions only ever append: prior members survive verbatim."""
        d, m = maintained
        before = [m.store.get(i).copy() for i in range(len(m.store))]
        d.insert(0, 5, 1.0)
        report = m.apply(d.commit())
        assert report.mode == "repair"
        for i, old in enumerate(before):
            assert np.setdiff1d(old, m.store.get(i)).size == 0

    def test_select_matches_cold_selection(self, maintained):
        from repro.core.selection import efficient_select

        d, m = maintained
        rng = np.random.default_rng(13)
        m.apply(batch(d, rng))
        warm = m.select(5)
        cold = efficient_select(m.store, 5, 1)
        assert np.array_equal(warm.seeds, cold.seeds)

    def test_repair_tracks_structural_change(self):
        """Deleting every in-edge of a vertex empties its repaired sets."""
        g = make_graph([(0, 2, 1.0), (1, 2, 1.0), (3, 0, 1.0)], n=4)
        d = DeltaGraph(g)
        m = IncrementalMaintainer(d, num_sets=64, seed=0)
        d.delete(0, 2)
        d.delete(1, 2)
        m.apply(d.commit())
        for i in np.flatnonzero(m.roots == 2):
            assert m.store.get(int(i)).tolist() == [2]


class TestMaintainerCheckpoint:
    def test_roundtrip_byte_identical(self, tmp_path, maintained):
        d, m = maintained
        rng = np.random.default_rng(31)
        m.apply(batch(d, rng))
        m.save_checkpoint(tmp_path)
        m2 = IncrementalMaintainer.from_checkpoint(
            tmp_path, d, num_sets=m.num_sets, seed=m.seed
        )
        assert m2.epoch == m.epoch
        assert np.array_equal(m2.store.vertices, m.store.vertices)
        assert np.array_equal(m2.store.offsets, m.store.offsets)
        assert np.array_equal(m2.counter, m.counter)
        assert np.array_equal(m2.roots, m.roots)

    def test_resume_continues_identically(self, tmp_path):
        """checkpoint → restore → apply == uninterrupted apply, bit for bit
        (the RNG state round-trips through the checkpoint)."""
        runs = []
        for resume in (False, True):
            d = DeltaGraph(random_graph())
            m = IncrementalMaintainer(d, num_sets=120, seed=8)
            rng = np.random.default_rng(41)
            m.apply(batch(d, rng))
            if resume:
                m.save_checkpoint(tmp_path)
                m = IncrementalMaintainer.from_checkpoint(
                    tmp_path, d, num_sets=120, seed=8
                )
            m.apply(batch(d, rng))
            runs.append(m)
        a, b = runs
        assert np.array_equal(a.store.vertices, b.store.vertices)
        assert np.array_equal(a.store.offsets, b.store.offsets)
        assert np.array_equal(a.counter, b.counter)

    def test_graph_mismatch_rejected(self, tmp_path, maintained):
        d, m = maintained
        m.save_checkpoint(tmp_path)
        d.insert(0, 5, 0.5)
        d.commit()  # delta moved on; checkpoint is now for another graph
        with pytest.raises(ArtifactError, match="replay"):
            IncrementalMaintainer.from_checkpoint(
                tmp_path, d, num_sets=m.num_sets, seed=m.seed
            )

    def test_config_changes_key(self, tmp_path, maintained):
        d, m = maintained
        other = IncrementalMaintainer(d, num_sets=m.num_sets, seed=99, build=False)
        assert m.checkpoint_key() != other.checkpoint_key()


# ------------------------------------------------------------ update grammar
class TestUpdateGrammar:
    def test_update_ops(self):
        op = parse_update_line('{"op": "insert", "src": 1, "dst": 2, "prob": 0.3}')
        assert op.kind == "update"
        assert op.update == EdgeUpdate("insert", 1, 2, 0.3)
        op = parse_update_line('{"op": "delete", "src": 1, "dst": 2}')
        assert op.update == EdgeUpdate("delete", 1, 2)

    def test_control_ops(self):
        assert parse_update_line('{"op": "commit"}').kind == "commit"
        assert parse_update_line('{"op": "stats"}').kind == "stats"
        q = parse_update_line('{"op": "query", "k": 5, "id": "a"}')
        assert q.kind == "query" and q.k == 5 and q.id == "a"

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"src": 1}',
            '{"op": "explode"}',
            '{"op": "commit", "extra": 1}',
            '{"op": "insert", "src": 1, "dst": 2}',
            '{"op": "insert", "src": 1.5, "dst": 2, "prob": 0.3}',
            '{"op": "delete", "src": 1, "dst": 2, "prob": 0.3}',
            '{"op": "query", "k": 0}',
        ],
    )
    def test_rejects_malformed(self, line):
        with pytest.raises(ParameterError):
            parse_update_line(line)

    def test_stream_skips_blanks_and_comments(self):
        lines = ["", "# header", '{"op": "commit"}', "  ", '{"op": "stats"}']
        kinds = [op.kind for op in iter_update_stream(lines)]
        assert kinds == ["commit", "stats"]


# ------------------------------------------------------------ DynamicService
class TestDynamicService:
    def test_requires_exactly_one_graph_source(self, line_graph):
        d = DeltaGraph(line_graph)
        with pytest.raises(ParameterError):
            DynamicService("x", line_graph, delta=d, num_sets=16)
        with pytest.raises(ParameterError):
            DynamicService("x", num_sets=16)

    def test_maintainer_delta_must_match(self, line_graph):
        d1, d2 = DeltaGraph(line_graph), DeltaGraph(line_graph)
        m = IncrementalMaintainer(d2, num_sets=16)
        with pytest.raises(ParameterError):
            DynamicService("x", delta=d1, maintainer=m)

    def test_commit_query_cycle(self):
        g = random_graph()
        with DynamicService("live", g, num_sets=128, seed=1) as svc:
            r0 = svc.query(k=3)
            assert r0.ok and r0.epoch == 0 and not r0.degraded
            report = svc.apply([EdgeUpdate("insert", 0, 5, 0.9)])
            assert report.epoch == 1
            r1 = svc.query(k=3)
            assert r1.ok and r1.epoch == 1 and not r1.degraded
            assert svc.staleness() == 0

    def test_epoch_changes_fingerprint(self):
        g = random_graph()
        with DynamicService("live", g, num_sets=64, seed=1) as svc:
            fp0 = svc.current_fingerprint()
            svc.apply([EdgeUpdate("insert", 0, 5, 0.9)])
            assert svc.current_fingerprint() != fp0

    def test_failed_repair_serves_degraded(self, monkeypatch):
        g = random_graph()
        with DynamicService("live", g, num_sets=64, seed=1) as svc:
            def boom(commit):
                raise ReproError("injected repair failure")

            monkeypatch.setattr(svc.maintainer, "apply", boom)
            svc.stage(EdgeUpdate("insert", 0, 5, 0.9))
            with pytest.raises(ReproError):
                svc.commit()
            assert svc.staleness() == 1
            resp = svc.query(k=3)
            assert resp.ok and resp.degraded
            assert resp.epoch == 0  # still the last published epoch

    def test_stats_snapshot_dynamic_section(self):
        g = random_graph()
        with DynamicService("live", g, num_sets=64, seed=1) as svc:
            snap = svc.stats_snapshot()
            dyn = snap["dynamic"]
            assert dyn["graph_epoch"] == 0 and dyn["served_epoch"] == 0
            assert dyn["staleness"] == 0
            assert dyn["fingerprint"] == svc.current_fingerprint()

    def test_response_epoch_serialised(self):
        g = random_graph()
        with DynamicService("live", g, num_sets=64, seed=1) as svc:
            doc = json.loads(svc.query(k=2).to_json())
            assert doc["epoch"] == 0


# -------------------------------------------------------------- CLI verb
class TestUpdateCLI:
    STREAM = "\n".join(
        [
            "# update stream",
            '{"op": "insert", "src": 1, "dst": 2, "prob": 0.3}',
            '{"op": "commit"}',
            '{"op": "query", "k": 3, "id": "q1"}',
            '{"op": "stats"}',
        ]
    )

    def run_cli(self, argv, capsys):
        from repro.cli import main

        rc = main(argv)
        out = capsys.readouterr().out
        return rc, [json.loads(x) for x in out.strip().splitlines()]

    def test_stream_end_to_end(self, tmp_path, capsys):
        stream = tmp_path / "u.jsonl"
        stream.write_text(self.STREAM)
        rc, docs = self.run_cli(
            ["update", "amazon", "--updates", str(stream),
             "--theta-cap", "100", "--seed", "1"],
            capsys,
        )
        assert rc == 0
        commit, query, stats = docs
        assert commit["op"] == "commit" and commit["epoch"] == 1
        assert query["status"] == "ok" and query["id"] == "q1"
        assert query["epoch"] == 1 and len(query["seeds"]) == 3
        assert stats["dynamic"]["served_epoch"] == 1

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        stream = tmp_path / "u.jsonl"
        stream.write_text(self.STREAM)
        rc, _ = self.run_cli(
            ["update", "amazon", "--updates", str(stream),
             "--theta-cap", "100", "--seed", "1", "--checkpoint", str(ckpt)],
            capsys,
        )
        assert rc == 0 and list(ckpt.glob("dynamic-*.npz"))
        longer = tmp_path / "u2.jsonl"
        longer.write_text(
            self.STREAM + "\n"
            '{"op": "insert", "src": 5, "dst": 9, "prob": 0.2}\n'
            '{"op": "commit"}\n'
            '{"op": "query", "k": 2, "id": "q2"}'
        )
        rc, docs = self.run_cli(
            ["update", "amazon", "--updates", str(longer),
             "--theta-cap", "100", "--seed", "1",
             "--checkpoint", str(ckpt), "--resume"],
            capsys,
        )
        assert rc == 0
        assert docs[0] == {"op": "commit", "epoch": 1, "mode": "replayed"}
        # The replay ends exactly at the checkpointed epoch, so q1 (which
        # follows that commit) is answered live, from the restored sketch.
        assert docs[1]["status"] == "ok" and docs[1]["epoch"] == 1
        assert docs[-2]["mode"] == "repair" and docs[-2]["epoch"] == 2
        assert docs[-1]["id"] == "q2" and docs[-1]["epoch"] == 2

    def test_resume_requires_checkpoint_dir(self, tmp_path):
        from repro.cli import main

        stream = tmp_path / "u.jsonl"
        stream.write_text(self.STREAM)
        rc = main(["update", "amazon", "--updates", str(stream), "--resume"])
        assert rc == 2  # ParameterError
