"""Tests for the PacIM-style forward influence sketches."""

import numpy as np
import pytest

from repro.core.fis import ForwardSketches, _propagate_min, fis_select
from repro.errors import ParameterError

from conftest import make_graph


class TestPropagateMin:
    def test_chain_propagates_backwards(self):
        # 0 -> 1 -> 2: vertex 0 sees the min rank of {0, 1, 2}.
        ranks = np.array([[0.9], [0.5], [0.1]])
        src = np.array([0, 1])
        dst = np.array([1, 2])
        out = _propagate_min(ranks, src, dst)
        assert out[0, 0] == pytest.approx(0.1)
        assert out[1, 0] == pytest.approx(0.1)
        assert out[2, 0] == pytest.approx(0.1)

    def test_no_edges_identity(self):
        ranks = np.random.default_rng(0).random((5, 3))
        out = _propagate_min(
            ranks, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(out, ranks)

    def test_cycle_converges(self):
        ranks = np.array([[0.7], [0.2], [0.5]])
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        out = _propagate_min(ranks, src, dst)
        assert np.all(out == 0.2)

    def test_direction_respected(self):
        # 0 -> 1 with min at 0: vertex 1 must NOT inherit 0's rank.
        ranks = np.array([[0.1], [0.9]])
        out = _propagate_min(ranks, np.array([0]), np.array([1]))
        assert out[1, 0] == pytest.approx(0.9)


class TestForwardSketches:
    def test_deterministic_line_estimates(self, line_graph):
        # All probabilities 1: reach sizes are exactly 5,4,3,2,1.
        fs = ForwardSketches(line_graph, num_samples=4, num_hashes=256, seed=0)
        ests = fs.estimate_all_singletons()
        true = np.array([5, 4, 3, 2, 1], dtype=float)
        assert np.all(np.abs(ests - true) / true < 0.35)

    def test_estimate_monotone_in_reach(self, line_graph):
        fs = ForwardSketches(line_graph, num_samples=4, num_hashes=64, seed=1)
        ests = fs.estimate_all_singletons()
        # Upstream vertices reach more.
        assert ests[0] > ests[3]

    def test_union_at_least_max_member(self, two_triangles):
        fs = ForwardSketches(two_triangles, num_samples=4, num_hashes=64, seed=2)
        both = fs.estimate(np.array([0, 3]))
        assert both >= fs.estimate(np.array([0])) - 1e-9
        assert both >= fs.estimate(np.array([3])) - 1e-9

    def test_disjoint_components_add(self, two_triangles):
        fs = ForwardSketches(two_triangles, num_samples=4, num_hashes=256, seed=3)
        one = fs.estimate(np.array([0]))
        both = fs.estimate(np.array([0, 3]))
        assert both == pytest.approx(2 * one, rel=0.3)
        assert both == pytest.approx(6.0, rel=0.3)

    def test_empty_seed_set(self, line_graph):
        fs = ForwardSketches(line_graph, num_samples=2, num_hashes=8, seed=4)
        assert fs.estimate(np.array([], dtype=np.int64)) == 0.0

    def test_probability_affects_estimate(self):
        strong = make_graph([(0, 1, 1.0)], n=2)
        weak = make_graph([(0, 1, 0.05)], n=2)
        fs_s = ForwardSketches(strong, num_samples=16, num_hashes=32, seed=5)
        fs_w = ForwardSketches(weak, num_samples=16, num_hashes=32, seed=5)
        assert fs_s.estimate(np.array([0])) > fs_w.estimate(np.array([0]))

    def test_nbytes_positive(self, line_graph):
        fs = ForwardSketches(line_graph, num_samples=2, num_hashes=4, seed=6)
        assert fs.nbytes() == 2 * 5 * 4 * 8  # samples x n x h x float64

    def test_rejects_bad_params(self, line_graph):
        with pytest.raises(ValueError):
            ForwardSketches(line_graph, num_samples=0)


class TestFisSelect:
    def test_picks_hub(self, star_graph):
        res = fis_select(star_graph, 1, num_samples=6, num_hashes=64, seed=0)
        assert res.seeds.tolist() == [0]

    def test_two_components(self, two_triangles):
        res = fis_select(two_triangles, 2, num_samples=6, num_hashes=64, seed=1)
        assert len({s // 3 for s in res.seeds.tolist()}) == 2

    def test_seed_count_unique(self, amazon_ic):
        res = fis_select(amazon_ic, 5, num_samples=3, num_hashes=8, seed=2)
        assert res.seeds.size == 5
        assert len(set(res.seeds.tolist())) == 5

    def test_candidate_restriction(self, amazon_ic):
        cands = np.arange(50)
        res = fis_select(
            amazon_ic, 4, num_samples=2, num_hashes=8, seed=3, candidates=cands
        )
        assert set(res.seeds.tolist()) <= set(range(50))

    def test_rejects_few_candidates(self, star_graph):
        with pytest.raises(ParameterError):
            fis_select(star_graph, 5, candidates=np.arange(2))

    def test_agrees_with_reverse_sampling_quality(self, amazon_ic):
        """FIS (forward) and IMM (reverse) should find seed sets of similar
        quality — the two directions estimate the same objective."""
        from repro.core import EfficientIMM, IMMParams
        from repro.diffusion import estimate_spread, get_model

        fis = fis_select(amazon_ic, 5, num_samples=6, num_hashes=32, seed=4)
        imm = EfficientIMM(amazon_ic).run(
            IMMParams(k=5, theta_cap=800, seed=4)
        )
        model = get_model("IC", amazon_ic)
        s_fis = estimate_spread(model, fis.seeds, num_samples=60, seed=5).mean
        s_imm = estimate_spread(model, imm.seeds, num_samples=60, seed=5).mean
        assert s_fis >= 0.8 * s_imm

    def test_determinism(self, amazon_ic):
        a = fis_select(amazon_ic, 3, num_samples=2, num_hashes=8, seed=9)
        b = fis_select(amazon_ic, 3, num_samples=2, num_hashes=8, seed=9)
        assert np.array_equal(a.seeds, b.seeds)
