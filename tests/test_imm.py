"""Tests for the IMM driver and the two framework facades."""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams, RipplesIMM
from repro.errors import OutOfMemoryModelError, ParameterError


class TestIMMParams:
    def test_defaults_match_paper(self):
        p = IMMParams()
        assert p.k == 50 and p.epsilon == 0.5

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            IMMParams(epsilon=0.0)
        with pytest.raises(ValueError):
            IMMParams(epsilon=1.5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            IMMParams(k=0)

    def test_rejects_bad_model(self):
        with pytest.raises(ParameterError):
            IMMParams(model="SIR")

    def test_rejects_bad_theta_cap(self):
        with pytest.raises(ParameterError):
            IMMParams(theta_cap=0)

    def test_rejects_bad_ell(self):
        with pytest.raises(ParameterError):
            IMMParams(ell=0.0)


@pytest.fixture(scope="module")
def amazon_run():
    from repro.graph.datasets import load_dataset

    g = load_dataset("amazon", model="IC", seed=0)
    params = IMMParams(k=8, epsilon=0.5, theta_cap=600, seed=1, num_threads=4)
    return g, params, EfficientIMM(g).run(params), RipplesIMM(g).run(params)


class TestEndToEnd:
    def test_seed_count(self, amazon_run):
        _, params, eimm, rip = amazon_run
        assert eimm.seeds.size == params.k
        assert rip.seeds.size == params.k

    def test_seeds_unique_and_in_range(self, amazon_run):
        g, _, eimm, _ = amazon_run
        assert len(set(eimm.seeds.tolist())) == eimm.seeds.size
        assert eimm.seeds.min() >= 0 and eimm.seeds.max() < g.num_vertices

    def test_frameworks_agree_on_seeds(self, amazon_run):
        # Same store (same seed) -> the two kernels must pick identically.
        _, _, eimm, rip = amazon_run
        assert np.array_equal(eimm.seeds, rip.seeds)

    def test_coverage_and_spread(self, amazon_run):
        g, _, eimm, _ = amazon_run
        assert 0.0 < eimm.coverage_fraction <= 1.0
        assert eimm.spread_estimate == pytest.approx(
            g.num_vertices * eimm.coverage_fraction
        )

    def test_stage_times_recorded(self, amazon_run):
        _, _, eimm, _ = amazon_run
        assert "Generate_RRRsets" in eimm.times.stages
        assert "Find_Most_Influential_Set" in eimm.times.stages
        assert eimm.times.total > 0

    def test_kernel_stats_recorded(self, amazon_run):
        _, params, eimm, rip = amazon_run
        for res in (eimm, rip):
            assert set(res.stats) == {
                "Generate_RRRsets", "Find_Most_Influential_Set",
            }
            for ks in res.stats.values():
                assert ks.num_threads == params.num_threads

    def test_ripples_selection_traffic_larger(self, amazon_run):
        _, _, eimm, rip = amazon_run
        assert (
            rip.stats["Find_Most_Influential_Set"].total_memory_ops
            > 3.0 * eimm.stats["Find_Most_Influential_Set"].total_memory_ops
        )

    def test_adaptive_store_smaller(self, amazon_run):
        _, _, eimm, rip = amazon_run
        assert eimm.rrr_store_bytes < rip.rrr_store_bytes

    def test_theta_reported(self, amazon_run):
        _, params, eimm, _ = amazon_run
        assert 1 <= eimm.theta <= params.theta_cap
        assert eimm.num_rrrsets >= eimm.theta or eimm.num_rrrsets == params.theta_cap

    def test_summary_renders(self, amazon_run):
        _, _, eimm, _ = amazon_run
        s = eimm.summary()
        assert "IMM[IC]" in s and "theta" in s


class TestDeterminism:
    def test_same_seed_same_result(self, amazon_ic):
        params = IMMParams(k=5, theta_cap=300, seed=7)
        a = EfficientIMM(amazon_ic).run(params)
        b = EfficientIMM(amazon_ic).run(params)
        assert np.array_equal(a.seeds, b.seeds)
        assert a.theta == b.theta

    def test_different_seed_usually_differs(self, amazon_ic):
        a = EfficientIMM(amazon_ic).run(IMMParams(k=5, theta_cap=300, seed=1))
        b = EfficientIMM(amazon_ic).run(IMMParams(k=5, theta_cap=300, seed=2))
        # Top seeds are hubs and may coincide; the full state rarely does.
        assert not np.array_equal(a.seeds, b.seeds) or a.num_rrrsets != b.num_rrrsets

    def test_num_threads_does_not_change_seeds(self, amazon_ic):
        a = EfficientIMM(amazon_ic).run(
            IMMParams(k=5, theta_cap=300, seed=3, num_threads=1)
        )
        b = EfficientIMM(amazon_ic).run(
            IMMParams(k=5, theta_cap=300, seed=3, num_threads=8)
        )
        assert np.array_equal(a.seeds, b.seeds)


class TestLTModel:
    def test_lt_end_to_end(self, amazon_lt):
        res = EfficientIMM(amazon_lt).run(
            IMMParams(k=5, model="LT", theta_cap=2000, seed=0)
        )
        assert res.seeds.size == 5
        assert res.coverage_fraction > 0.0

    def test_lt_frameworks_agree(self, amazon_lt):
        params = IMMParams(k=5, model="LT", theta_cap=1500, seed=4)
        a = EfficientIMM(amazon_lt).run(params)
        b = RipplesIMM(amazon_lt).run(params)
        assert np.array_equal(a.seeds, b.seeds)


class TestUncappedSmallGraph:
    def test_full_martingale_path(self):
        # Small enough that the real (uncapped) theta is tractable: the
        # estimation loop, LB certification, and top-up all execute.
        from repro.graph.builder import from_edge_array
        from repro.graph.generators import erdos_renyi
        from repro.graph.weights import assign_ic_weights

        src, dst = erdos_renyi(60, 240, seed=5)
        g = assign_ic_weights(
            from_edge_array(src, dst, num_vertices=60), seed=5
        )
        res = EfficientIMM(g).run(IMMParams(k=3, epsilon=0.9, seed=0))
        assert res.seeds.size == 3
        assert res.opt_lower_bound >= 1.0
        assert not getattr(res, "theta_capped", False)
        assert res.num_rrrsets >= res.theta


class TestOOM:
    def test_ripples_oom_with_budget(self, amazon_ic):
        algo = RipplesIMM(amazon_ic, memory_budget_bytes=20_000)
        with pytest.raises(OutOfMemoryModelError):
            algo.run(IMMParams(k=3, theta_cap=400, seed=0))

    def test_efficientimm_survives_same_budget(self, amazon_ic):
        budget = 80 * ((amazon_ic.num_vertices + 7) // 8)
        res = EfficientIMM(amazon_ic, memory_budget_bytes=budget).run(
            IMMParams(k=3, theta_cap=70, seed=0)
        )
        assert res.seeds.size == 3
        with pytest.raises(OutOfMemoryModelError):
            RipplesIMM(amazon_ic, memory_budget_bytes=budget).run(
                IMMParams(k=3, theta_cap=70, seed=0)
            )


class TestAblationToggles:
    def test_all_toggles_same_seeds(self, amazon_ic):
        params = IMMParams(k=4, theta_cap=250, seed=6)
        base = EfficientIMM(amazon_ic).run(params).seeds
        for kwargs in (
            {"fused_kernels": False},
            {"adaptive_update": False},
            {"adaptive_representation": False},
            {"dynamic_schedule": False},
        ):
            got = EfficientIMM(amazon_ic, **kwargs).run(params).seeds
            assert np.array_equal(got, base), kwargs

    def test_fusion_reduces_selection_work(self, amazon_ic):
        params = IMMParams(k=4, theta_cap=250, seed=6)
        fused = EfficientIMM(amazon_ic, fused_kernels=True).run(params)
        unfused = EfficientIMM(amazon_ic, fused_kernels=False).run(params)
        assert (
            fused.stats["Find_Most_Influential_Set"].total_memory_ops
            < unfused.stats["Find_Most_Influential_Set"].total_memory_ops
        )
