"""Public-API contract tests: the documented surface stays importable,
documented, and coherent."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.graph",
    "repro.diffusion",
    "repro.sketch",
    "repro.core",
    "repro.runtime",
    "repro.simmachine",
    "repro.distributed",
    "repro.bench",
]


class TestTopLevel:
    def test_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_quickstart_surface(self):
        # The README's import line must keep working verbatim.
        from repro import (  # noqa: F401
            EfficientIMM,
            IMMParams,
            RipplesIMM,
            estimate_spread,
            get_model,
            load_dataset,
        )


class TestSubpackages:
    @pytest.mark.parametrize("pkg", SUBPACKAGES)
    def test_imports_and_all_resolves(self, pkg):
        mod = importlib.import_module(pkg)
        assert mod.__doc__, f"{pkg} has no module docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{pkg}.{name} in __all__ but missing"

    @pytest.mark.parametrize("pkg", SUBPACKAGES)
    def test_public_items_documented(self, pkg):
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{pkg}.{name} lacks a docstring"

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()


class TestCoreModuleDocs:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core.martingale",
            "repro.core.sampling",
            "repro.core.selection",
            "repro.core.imm",
            "repro.core.opim",
            "repro.core.tim",
            "repro.core.fis",
            "repro.core.heuristics",
            "repro.simmachine.cost",
            "repro.simmachine.cache",
            "repro.simmachine.instrumented",
            "repro.distributed.dimm",
            "repro.distributed.dripples",
            "repro.bench.sweep",
            "repro.validate",
        ],
    )
    def test_every_public_function_documented(self, module):
        mod = importlib.import_module(module)
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module:
                continue
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert inspect.getdoc(obj), f"{module}.{name} lacks a docstring"
