"""Tests for repro.service: artifacts, cache, protocol, and the query engine.

Covers the serving-layer acceptance criteria: serialization round-trips for
the CSR graph and all three RRR-store layouts (selection-kernel-equivalent
after reload), integrity checks on corrupted artifacts, LRU byte-budget
behaviour, fingerprint batching with prefix-consistent answers, deadline
timeouts that report instead of hang, and warm queries that skip sampling
entirely (telemetry-verified).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import telemetry
from repro.core.selection import efficient_select
from repro.errors import ArtifactError, GraphFormatError, ParameterError
from repro.graph.io import graph_checksum, graph_fingerprint, load_npz, save_npz
from repro.sketch.rrr import AdaptivePolicy
from repro.sketch.store import AdaptiveRRRStore, FlatRRRStore, PartitionedRRRStore
from repro.service import (
    ArtifactStore,
    CacheEntry,
    EngineConfig,
    IMQuery,
    IMResponse,
    QueryEngine,
    SketchCache,
    load_store,
    parse_request_line,
    save_store,
    sketch_fingerprint,
)

THETA = 120  # serving sketch size used throughout (small => fast cold path)


def _random_sets(n, count, seed=0, max_size=12):
    rng = np.random.default_rng(seed)
    return [
        rng.choice(n, size=rng.integers(1, max_size), replace=False)
        for _ in range(count)
    ]


def _flat_store(n=40, count=30, seed=0) -> FlatRRRStore:
    s = FlatRRRStore(n, sort_sets=True)
    s.extend(_random_sets(n, count, seed))
    return s


def _spans(tel, name):
    return [s for root in tel.tracer.roots for s in root.find(name)]


# --------------------------------------------------------------------- graphs
class TestGraphArtifacts:
    def test_npz_roundtrip(self, diamond_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(diamond_graph, path)
        g2 = load_npz(path)
        assert np.array_equal(g2.indptr, diamond_graph.indptr)
        assert np.array_equal(g2.indices, diamond_graph.indices)
        assert np.array_equal(g2.probs, diamond_graph.probs)
        assert graph_fingerprint(g2) == graph_fingerprint(diamond_graph)

    def test_checksum_detects_tampering(self, diamond_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(diamond_graph, path)
        with np.load(path) as data:
            payload = {k: data[k].copy() for k in data.files}
        payload["probs"][0] -= 0.125  # still a valid prob; checksum now lies
        np.savez_compressed(path, **payload)
        with pytest.raises(GraphFormatError, match="checksum"):
            load_npz(path)

    def test_fingerprint_tracks_content(self, diamond_graph, line_graph):
        assert graph_fingerprint(diamond_graph) == graph_fingerprint(diamond_graph)
        assert graph_fingerprint(diamond_graph) != graph_fingerprint(line_graph)
        assert graph_checksum(diamond_graph) != graph_checksum(line_graph)


# ------------------------------------------------------------- sketch artifacts
class TestSketchArtifacts:
    def test_flat_roundtrip_bitwise(self, tmp_path):
        store = _flat_store()
        path = save_store(store, tmp_path / "s.npz", fingerprint="abc")
        loaded, counter, meta = load_store(path, expect_fingerprint="abc")
        assert counter is None and meta == {}
        assert isinstance(loaded, FlatRRRStore)
        assert loaded.sort_sets == store.sort_sets
        assert np.array_equal(loaded.offsets, store.offsets)
        assert np.array_equal(loaded.vertices, store.vertices)

    def test_partitioned_roundtrip(self, tmp_path):
        store = PartitionedRRRStore(40, 3, sort_sets=True)
        for i, s in enumerate(_random_sets(40, 30, seed=1)):
            store.append(i % 3, s)
        path = save_store(store, tmp_path / "p.npz")
        loaded, _, _ = load_store(path)
        assert isinstance(loaded, PartitionedRRRStore)
        assert loaded.num_workers == 3 and len(loaded) == len(store)
        for a, b in zip(loaded, store):
            assert np.array_equal(a, b)

    def test_adaptive_roundtrip(self, tmp_path):
        store = AdaptiveRRRStore(
            40, policy=AdaptivePolicy(0.25), budget_bytes=1 << 20
        )
        for s in _random_sets(40, 30, seed=2):
            store.append(s)
        path = save_store(store, tmp_path / "a.npz")
        loaded, _, _ = load_store(path)
        assert isinstance(loaded, AdaptiveRRRStore)
        assert len(loaded) == len(store)
        assert loaded.policy.bitmap_fraction == 0.25
        assert loaded.budget_bytes == 1 << 20
        for a, b in zip(loaded, store):
            assert np.array_equal(a.vertices(), b.vertices())

    @pytest.mark.parametrize("kind", ["flat", "partitioned", "adaptive"])
    def test_selection_identical_after_reload(self, tmp_path, kind):
        sets = _random_sets(60, 50, seed=3)
        if kind == "flat":
            store = FlatRRRStore(60, sort_sets=True)
            store.extend(sets)
            to_flat = lambda s: s
        elif kind == "partitioned":
            store = PartitionedRRRStore(60, 2, sort_sets=True)
            for i, s in enumerate(sets):
                store.append(i % 2, s)
            to_flat = lambda s: s.merge()
        else:
            store = AdaptiveRRRStore(60, policy=AdaptivePolicy(0.5))
            for s in sets:
                store.append(s)
            to_flat = lambda s: s.to_flat(sort_sets=True)
        before = efficient_select(to_flat(store), 5, 1)
        loaded, _, _ = load_store(save_store(store, tmp_path / "s.npz"))
        after = efficient_select(to_flat(loaded), 5, 1)
        assert after.seeds.tolist() == before.seeds.tolist()
        assert after.coverage_fraction == before.coverage_fraction

    def test_counter_and_meta_roundtrip(self, tmp_path):
        store = _flat_store()
        counter = store.vertex_counts()
        meta = {"dataset": "amazon", "epsilon": 0.5}
        path = save_store(store, tmp_path / "s.npz", counter=counter, meta=meta)
        _, counter2, meta2 = load_store(path)
        assert np.array_equal(counter2, counter)
        assert meta2 == meta

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = save_store(_flat_store(), tmp_path / "s.npz", fingerprint="right")
        with pytest.raises(ArtifactError, match="fingerprint mismatch"):
            load_store(path, expect_fingerprint="wrong")

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            load_store(tmp_path / "nope.npz")

    def test_corrupted_payload_fails_integrity(self, tmp_path):
        path = save_store(_flat_store(), tmp_path / "s.npz")
        with np.load(path) as data:
            payload = {k: data[k].copy() for k in data.files}
        payload["vertices"][0] ^= 1  # bit-flip one entry, keep stale checksum
        np.savez_compressed(path, **payload)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            load_store(path)

    def test_truncated_archive_raises(self, tmp_path):
        path = save_store(_flat_store(), tmp_path / "s.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactError):
            load_store(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(4))
        with pytest.raises(ArtifactError, match="not a repro sketch artifact"):
            load_store(path)

    def test_sketch_fingerprint_components(self):
        base = sketch_fingerprint("g", "IC", 0.5, 0, 100)
        assert base == sketch_fingerprint("g", "ic", 0.5, 0, 100)  # model case
        assert base != sketch_fingerprint("h", "IC", 0.5, 0, 100)
        assert base != sketch_fingerprint("g", "LT", 0.5, 0, 100)
        assert base != sketch_fingerprint("g", "IC", 0.4, 0, 100)
        assert base != sketch_fingerprint("g", "IC", 0.5, 1, 100)
        assert base != sketch_fingerprint("g", "IC", 0.5, 0, 101)

    def test_artifact_store_directory(self, tmp_path, diamond_graph):
        art = ArtifactStore(tmp_path / "arts")
        gfp = art.save_graph(diamond_graph)
        g2 = art.load_graph(gfp)
        assert graph_fingerprint(g2) == gfp
        store = _flat_store()
        art.save_sketch("f00d", store)
        assert art.has_sketch("f00d") and not art.has_sketch("beef")
        assert art.list_sketches() == ["f00d"]
        loaded, _, _ = art.load_sketch("f00d")
        assert np.array_equal(loaded.vertices, store.vertices)


# ---------------------------------------------------------------------- cache
def _entry(n=40, count=20, seed=0) -> CacheEntry:
    store = _flat_store(n, count, seed).trim()
    return CacheEntry(store=store, counter=store.vertex_counts())


class TestSketchCache:
    def test_hit_miss_counting(self):
        cache = SketchCache(None)
        assert cache.get("a") is None
        e = _entry()
        assert cache.put("a", e)
        assert cache.get("a") is e
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        e = _entry()
        cache = SketchCache(e.nbytes() * 2)
        cache.put("a", _entry(seed=1))
        cache.put("b", _entry(seed=2))
        cache.get("a")  # refresh a => b is now LRU
        cache.put("c", _entry(seed=3))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_byte_accounting(self):
        cache = SketchCache(None)
        e1, e2 = _entry(seed=1), _entry(seed=2, count=30)
        cache.put("a", e1)
        cache.put("b", e2)
        assert cache.current_bytes() == e1.nbytes() + e2.nbytes()
        cache.evict("a")
        assert cache.current_bytes() == e2.nbytes()
        assert len(cache) == 1

    def test_oversized_entry_rejected_not_raised(self):
        cache = SketchCache(8)  # smaller than any real entry
        assert cache.put("a", _entry()) is False
        assert cache.stats.rejected == 1 and len(cache) == 0

    def test_refresh_same_key_no_double_charge(self):
        cache = SketchCache(None)
        e1, e2 = _entry(seed=1), _entry(seed=2)
        cache.put("a", e1)
        cache.put("a", e2)
        assert cache.current_bytes() == e2.nbytes()
        assert len(cache) == 1

    def test_evicted_entry_still_usable_by_holder(self):
        e = _entry()
        cache = SketchCache(e.nbytes())
        cache.put("a", e)
        held = cache.get("a")
        cache.put("b", _entry(seed=9))  # evicts "a"
        assert "a" not in cache
        # The caller's reference is untouched by eviction.
        sel = efficient_select(held.store, 3, 1, initial_counter=held.counter)
        assert len(sel.seeds) == 3


# ------------------------------------------------------------------- protocol
class TestProtocol:
    def test_from_dict_and_back(self):
        q = IMQuery.from_dict(
            {"dataset": "amazon", "k": 3, "epsilon": 0.4, "id": "q1"}
        )
        assert q.k == 3 and q.id == "q1" and q.model == "IC"
        assert q.to_dict()["dataset"] == "amazon"

    def test_unknown_field_rejected(self):
        with pytest.raises(ParameterError, match="unknown query field"):
            IMQuery.from_dict({"dataset": "amazon", "qqq": 1})

    def test_missing_dataset_rejected(self):
        with pytest.raises(ParameterError, match="dataset"):
            IMQuery.from_dict({"k": 3})

    @pytest.mark.parametrize(
        "bad",
        [
            {"k": 0},
            {"k": "ten"},
            {"epsilon": 0.0},
            {"epsilon": 7.0},
            {"model": "SIR"},
            {"theta_cap": 0},
            {"deadline_s": -1.0},
        ],
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(ParameterError):
            IMQuery(dataset="amazon", **bad).validate()

    def test_batch_key_groups_on_sketch_identity(self):
        a = IMQuery(dataset="Amazon", k=5)
        b = IMQuery(dataset="amazon", k=50, deadline_s=1.0, id="x")
        c = IMQuery(dataset="amazon", k=5, epsilon=0.3)
        assert a.batch_key() == b.batch_key()
        assert a.batch_key() != c.batch_key()

    def test_parse_request_line_shapes(self):
        single = parse_request_line('{"dataset": "amazon"}')
        assert [q.dataset for q in single] == ["amazon"]
        batch = parse_request_line(
            '{"queries": [{"dataset": "amazon"}, {"dataset": "dblp", "k": 2}]}'
        )
        assert [q.dataset for q in batch] == ["amazon", "dblp"]
        arr = parse_request_line('[{"dataset": "amazon"}]')
        assert len(arr) == 1
        op = parse_request_line('{"op": "stats"}')
        assert op == {"op": "stats"}

    @pytest.mark.parametrize("line", ["not json", "[]", "42", '"hi"'])
    def test_parse_request_line_rejects(self, line):
        with pytest.raises(ParameterError):
            parse_request_line(line)

    def test_response_to_dict_ok_vs_error(self):
        ok = IMResponse(status="ok", seeds=[1, 2], num_rrrsets=10, cached=True)
        doc = ok.to_dict()
        assert doc["seeds"] == [1, 2] and doc["cached"] is True
        err = IMResponse(status="error", error="boom", id="q")
        doc = err.to_dict()
        assert doc["error"] == "boom" and "seeds" not in doc
        json.loads(err.to_json())  # serialisable


class TestProtocolHardening:
    """parse_request_line is the one untrusted-input door (stdin loops and
    the TCP gateway both go through it) — every malformed shape must come
    back as a structured ParameterError, never a bare exception."""

    def test_oversized_line_rejected(self):
        line = '{"dataset": "' + "x" * 300 + '"}'
        with pytest.raises(ParameterError, match="byte limit"):
            parse_request_line(line, max_line_bytes=256)
        with pytest.raises(ParameterError, match="byte limit"):
            parse_request_line(line.encode(), max_line_bytes=256)
        # The default bound is the documented module constant.
        from repro.service import MAX_LINE_BYTES

        assert MAX_LINE_BYTES == 1 << 20

    def test_bytes_lines_are_decoded(self):
        [q] = parse_request_line(b'{"dataset": "amazon", "k": 2}')
        assert q.dataset == "amazon" and q.k == 2

    def test_invalid_utf8_rejected(self):
        with pytest.raises(ParameterError, match="UTF-8"):
            parse_request_line(b'{"dataset": "\xff\xfe"}')

    def test_non_string_op_rejected(self):
        with pytest.raises(ParameterError, match="op must be a string"):
            parse_request_line('{"op": 42}')

    @pytest.mark.parametrize(
        "bad",
        [
            {"k": True},           # bool is not an int on the wire
            {"seed": 1.5},
            {"seed": True},
            {"epsilon": "half"},
            {"theta_cap": True},
            {"deadline_s": "soon"},
            {"id": 7},
            {"dataset": 3},
        ],
    )
    def test_wrong_typed_fields_rejected(self, bad):
        doc = {"dataset": "amazon", **bad}
        with pytest.raises(ParameterError):
            parse_request_line(json.dumps(doc))

    def test_response_from_dict_roundtrip(self):
        resp = IMResponse(
            status="overloaded", id="q9", error="overloaded: queue full",
            retry_after_s=0.5,
        )
        back = IMResponse.from_dict(json.loads(resp.to_json()))
        assert back.status == "overloaded"
        assert back.retry_after_s == 0.5 and back.id == "q9"

    def test_response_from_dict_needs_status(self):
        with pytest.raises(ParameterError):
            IMResponse.from_dict({"seeds": [1]})
        with pytest.raises(ParameterError):
            IMResponse.from_dict(["ok"])


# --------------------------------------------------------------------- engine
@pytest.fixture(scope="module")
def engine():
    with QueryEngine(config=EngineConfig(default_theta=THETA)) as eng:
        yield eng


def _q(dataset="amazon", **kw) -> IMQuery:
    kw.setdefault("theta_cap", THETA)
    return IMQuery(dataset=dataset, **kw)


class TestQueryEngine:
    def test_cold_then_warm_prefix_consistent(self, engine):
        cold = engine.query(_q(k=5))
        assert cold.ok and not cold.cached
        assert len(cold.seeds) == 5 and engine.stats.cold_samples == 1
        assert cold.num_rrrsets == THETA
        warm = engine.query(_q(k=9))
        assert warm.ok and warm.cached
        assert engine.stats.cold_samples == 1  # no resampling
        assert warm.seeds[:5] == cold.seeds  # greedy prefix consistency
        assert warm.coverage_fraction >= cold.coverage_fraction

    def test_batch_one_pass_many_k(self, engine):
        before = engine.stats.batches
        qs = [_q(k=k, id=f"k{k}") for k in (2, 7, 4)]
        rs = engine.execute(qs)
        assert engine.stats.batches == before + 1
        assert [r.id for r in rs] == ["k2", "k7", "k4"]  # submission order
        assert all(r.ok for r in rs)
        assert rs[1].seeds[:2] == rs[0].seeds
        assert rs[1].seeds[:4] == rs[2].seeds
        cov = {r.id: r.coverage_fraction for r in rs}
        assert cov["k2"] <= cov["k4"] <= cov["k7"]

    def test_spread_estimate_scales_coverage(self, engine):
        r = engine.query(_q(k=3))
        assert r.spread_estimate == pytest.approx(
            r.coverage_fraction * engine._graphs[("amazon", "IC", 0)].num_vertices
        )

    def test_expired_deadline_times_out_not_hangs(self, engine):
        r = engine.query(_q(k=5, deadline_s=0.0))
        assert r.status == "timeout" and not r.ok
        assert "TimeoutError" in r.error
        assert engine.stats.timeouts >= 1
        assert engine.query(_q(k=5)).ok  # engine unaffected

    def test_k_exceeding_vertices_is_clean_error(self, engine):
        r = engine.query(_q(k=10**9))
        assert r.status == "error"
        assert "ParameterError" in r.error and "exceeds" in r.error

    def test_invalid_query_does_not_poison_batch(self, engine):
        rs = engine.execute([_q(k=3, id="good"), _q(epsilon=9.0, id="bad")])
        by_id = {r.id: r for r in rs}
        assert by_id["good"].ok
        assert by_id["bad"].status == "error"
        assert "epsilon" in by_id["bad"].error

    def test_unknown_dataset_is_error_response(self, engine):
        r = engine.query(_q(dataset="atlantis"))
        assert r.status == "error" and "atlantis" in r.error

    def test_stats_snapshot_shape(self, engine):
        snap = engine.stats_snapshot()
        assert snap["service"]["queries"] == engine.stats.queries
        assert set(snap["cache"]) >= {"hits", "misses", "bytes", "hit_rate"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            QueryEngine(config=EngineConfig(backend="gpu"))


class TestEngineTelemetry:
    def test_warm_queries_skip_sampling(self):
        with telemetry.session() as tel:
            with QueryEngine(config=EngineConfig(default_theta=THETA)) as eng:
                eng.query(_q(k=4))
                cold_spans = len(_spans(tel, "sampling.parallel_generate"))
                assert cold_spans == 1
                warm = eng.query(_q(k=6))
            assert warm.cached
            # No new sampling span for the warm query: cache hit skipped it.
            assert len(_spans(tel, "sampling.parallel_generate")) == cold_spans
            counters = tel.registry.snapshot()["counters"]
            assert counters["service.cache.hits"] >= 1
            assert counters["service.cold_samples"] == 1
            assert len(_spans(tel, "service.selection")) == 2

    def test_latency_histogram_and_stat_gauges(self):
        with telemetry.session() as tel:
            with QueryEngine(config=EngineConfig(default_theta=THETA)) as eng:
                for k in (2, 3, 4):
                    assert eng.query(_q(k=k)).ok
            snap = tel.registry.snapshot()
            hist = snap["histograms"]["service.query_latency_s"]
            assert hist["count"] == 3
            assert snap["gauges"]["service.stats.ok"] == 3.0
            assert snap["gauges"]["service.cache_stats.hits"] == 2.0


class TestEnginePersistence:
    def test_artifact_warm_start_across_engines(self, tmp_path):
        cfg = EngineConfig(default_theta=THETA, artifact_dir=tmp_path)
        with QueryEngine(config=cfg) as eng1:
            cold = eng1.query(_q(k=5))
            assert not cold.cached and eng1.stats.artifact_saves == 1
        with QueryEngine(config=cfg) as eng2:  # fresh process-equivalent: empty cache
            warm = eng2.query(_q(k=5))
        assert warm.cached and warm.seeds == cold.seeds
        assert eng2.stats.cold_samples == 0
        assert eng2.stats.artifact_loads == 1

    def test_corrupt_artifact_falls_back_to_cold(self, tmp_path):
        cfg = EngineConfig(default_theta=THETA, artifact_dir=tmp_path)
        with QueryEngine(config=cfg) as eng1:
            cold = eng1.query(_q(k=5))
        (art_file,) = tmp_path.glob("sketch-*.npz")
        raw = bytearray(art_file.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        art_file.write_bytes(bytes(raw))
        with QueryEngine(config=cfg) as eng2:
            r = eng2.query(_q(k=5))
        assert r.ok and r.seeds == cold.seeds  # resampled deterministically
        assert eng2.stats.artifact_corrupt == 1
        assert eng2.stats.cold_samples == 1

    def test_persist_false_writes_nothing(self, tmp_path):
        cfg = EngineConfig(
            default_theta=THETA, artifact_dir=tmp_path, persist=False
        )
        with QueryEngine(config=cfg) as eng:
            assert eng.query(_q(k=3)).ok
        assert list(tmp_path.glob("sketch-*.npz")) == []


class TestEngineEviction:
    def test_tiny_budget_evicts_without_corrupting(self):
        # Budget fits roughly one sketch: alternating datasets must evict.
        with QueryEngine(config=EngineConfig(default_theta=THETA)) as probe:
            probe.query(_q(k=3))
            one_entry = probe.cache.current_bytes()
        cfg = EngineConfig(
            default_theta=THETA, cache_budget_bytes=int(one_entry * 1.5)
        )
        with QueryEngine(config=cfg) as eng:
            a1 = eng.query(_q("amazon", k=4))
            d1 = eng.query(_q("dblp", k=4))
            a2 = eng.query(_q("amazon", k=4))
            d2 = eng.query(_q("dblp", k=4))
        assert eng.cache.stats.evictions >= 2
        # Evicted-and-resampled answers are identical (deterministic seed).
        assert a2.seeds == a1.seeds and d2.seeds == d1.seeds
        assert all(r.ok for r in (a1, d1, a2, d2))

    def test_zero_budget_serves_cold_every_time(self):
        with QueryEngine(
            config=EngineConfig(default_theta=THETA, cache_budget_bytes=0)
        ) as eng:
            r1 = eng.query(_q(k=3))
            r2 = eng.query(_q(k=3))
        assert r1.ok and r2.ok and not r2.cached
        assert eng.stats.cold_samples == 2
        assert eng.cache.stats.rejected == 2


class TestServingAcceptance:
    def test_twenty_queries_two_datasets(self):
        """The ISSUE acceptance run: >=20 mixed queries over 2 datasets."""
        rng = np.random.default_rng(7)
        queries = [
            _q(dataset=ds, k=int(k), id=f"{ds}-{i}")
            for i, (ds, k) in enumerate(
                (["amazon", "dblp"][i % 2], rng.integers(1, 12))
                for i in range(20)
            )
        ]
        with telemetry.session() as tel:
            with QueryEngine(config=EngineConfig(default_theta=THETA)) as eng:
                # Serving-loop style: one query per request, like `repro serve`.
                responses = [eng.query(q) for q in queries]
            counters = tel.registry.snapshot()["counters"]
        assert len(responses) == 20 and all(r.ok for r in responses)
        # One cold sampling pass per dataset; everything else is warm.
        assert eng.stats.cold_samples == 2
        assert counters["service.cache.hits"] == 18
        assert eng.cache.stats.hits == 18
        # Prefix consistency across the whole mix, per dataset.
        for ds in ("amazon", "dblp"):
            rs = [r for r, q in zip(responses, queries) if q.dataset == ds]
            longest = max(rs, key=lambda r: len(r.seeds))
            for r in rs:
                assert longest.seeds[: len(r.seeds)] == r.seeds


# ------------------------------------------------------------------------ CLI
class TestCLI:
    def _main(self, argv, capsys):
        from repro.cli import main

        rc = main(argv)
        out = capsys.readouterr()
        return rc, out.out, out.err

    def test_run_bad_epsilon_exits_2(self, capsys):
        rc, _, err = self._main(
            ["run", "amazon", "--epsilon", "7", "--theta-cap", "200"], capsys
        )
        assert rc == 2
        assert err.strip() == "error: epsilon must be in (0, 1], got 7.0"

    def test_run_k_too_large_exits_2(self, capsys):
        rc, _, err = self._main(
            ["run", "amazon", "--k", "99999999", "--theta-cap", "200"], capsys
        )
        assert rc == 2
        assert err.startswith("error:") and "Traceback" not in err

    def test_query_bad_epsilon_exits_2(self, capsys):
        rc, _, err = self._main(
            ["query", "amazon", "--epsilon", "9"], capsys
        )
        assert rc == 2 and err.startswith("error:")

    def test_query_k_too_large_exits_2(self, capsys):
        rc, _, err = self._main(
            ["query", "amazon", "--k", "99999999", "--theta-cap", str(THETA)],
            capsys,
        )
        assert rc == 2 and "exceeds" in err

    def test_query_success_json(self, capsys):
        rc, out, _ = self._main(
            ["query", "amazon", "--k", "3", "--theta-cap", str(THETA), "--json"],
            capsys,
        )
        assert rc == 0
        doc = json.loads(out.strip().splitlines()[-1])
        assert doc["status"] == "ok" and len(doc["seeds"]) == 3

    def test_serve_loop_end_to_end(self, tmp_path):
        """Spawn `repro serve`, send cold + warm + stats, check the wire."""
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(repo_src))
        lines = "\n".join(
            [
                json.dumps({"dataset": "amazon", "k": 3, "theta_cap": THETA}),
                json.dumps({"dataset": "amazon", "k": 5, "theta_cap": THETA}),
                json.dumps({"op": "stats"}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--artifacts", str(tmp_path / "arts")],
            input=lines, capture_output=True, text=True, env=env, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        docs = [json.loads(l) for l in proc.stdout.strip().splitlines()]
        q1, q2, stats = docs[0], docs[1], docs[2]
        assert q1["status"] == "ok" and q1["cached"] is False
        assert q2["status"] == "ok" and q2["cached"] is True
        assert q2["seeds"][:3] == q1["seeds"]
        assert stats["cache"]["hits"] == 1
        assert stats["service"]["cold_samples"] == 1
