"""Tests for the statistical validation utilities, plus the end-to-end
statistical health checks of the samplers themselves."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.validate import (
    roots_are_uniform,
    same_size_distribution,
    seed_stability,
    spread_consistent,
)


class TestRootsUniform:
    def test_uniform_passes(self, rng):
        roots = rng.integers(0, 1000, size=5000)
        assert roots_are_uniform(roots, 1000)

    def test_skewed_fails(self, rng):
        roots = np.concatenate([
            rng.integers(0, 100, size=4500),
            rng.integers(0, 1000, size=500),
        ])
        assert not roots_are_uniform(roots, 1000)

    def test_needs_enough_samples(self):
        with pytest.raises(ParameterError):
            roots_are_uniform(np.arange(5), 100)

    def test_real_sampler_roots_uniform(self, amazon_ic, rng):
        from repro.diffusion import get_model

        model = get_model("IC", amazon_ic)
        roots = np.array([model.random_root(rng) for _ in range(4000)])
        assert roots_are_uniform(roots, amazon_ic.num_vertices)


class TestSizeDistribution:
    def test_same_distribution_passes(self, rng):
        a = rng.exponential(50, size=400)
        b = rng.exponential(50, size=400)
        assert same_size_distribution(a, b)

    def test_different_distributions_fail(self, rng):
        a = rng.exponential(50, size=400)
        b = rng.exponential(200, size=400)
        assert not same_size_distribution(a, b)

    def test_needs_enough_samples(self):
        with pytest.raises(ParameterError):
            same_size_distribution(np.ones(3), np.ones(30))

    def test_serial_vs_parallel_sampler(self, skitter_ic):
        """The process-parallel sampler must draw from the same RRR-size
        distribution as the serial one (different streams, same law)."""
        from repro.core.parallel_sampling import parallel_generate
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model
        from repro.runtime.backends import SerialBackend

        serial = RRRSampler(
            get_model("IC", skitter_ic),
            SamplingConfig.efficientimm(num_threads=1),
            seed=10,
        )
        serial.extend(250)
        par = parallel_generate(
            skitter_ic, "IC", 250, num_workers=3, seed=99,
            backend=SerialBackend(),
        )
        assert same_size_distribution(serial.store.sizes(), par.sizes())


class TestSpreadConsistent:
    def test_within_noise_passes(self):
        assert spread_consistent(1000.0, 995.0, mc_stderr=5.0)

    def test_large_gap_fails(self):
        assert not spread_consistent(2000.0, 1000.0, mc_stderr=5.0)

    def test_selection_bias_slack(self):
        # 8% above MC with tiny stderr: absorbed by the relative slack.
        assert spread_consistent(1080.0, 1000.0, mc_stderr=1.0)

    def test_end_to_end(self, amazon_ic):
        from repro.core import EfficientIMM, IMMParams
        from repro.diffusion import estimate_spread, get_model

        res = EfficientIMM(amazon_ic).run(
            IMMParams(k=8, theta_cap=1200, seed=3)
        )
        est = estimate_spread(
            get_model("IC", amazon_ic), res.seeds, num_samples=150, seed=4
        )
        assert spread_consistent(res.spread_estimate, est.mean, est.stderr)


class TestSeedStability:
    def test_identical_sets_perfect(self):
        sets = [np.array([1, 2, 3])] * 3
        r = seed_stability(sets)
        assert r and r.statistic == 1.0

    def test_disjoint_sets_fail(self):
        sets = [np.array([1, 2]), np.array([3, 4]), np.array([5, 6])]
        assert not seed_stability(sets)

    def test_needs_two_sets(self):
        with pytest.raises(ParameterError):
            seed_stability([np.array([1])])

    def test_imm_seeds_stable_on_hub_graph(self):
        # Identity-stability needs hubs AND a subcritical cascade (with the
        # paper's uniform [0,1] weights the replicas percolate, making every
        # vertex near-equally influential — seed identity is then noise by
        # construction).  Preferential attachment + weak probabilities
        # concentrates influence on the early hubs.
        from repro.core import EfficientIMM, IMMParams
        from repro.graph.builder import from_edge_array
        from repro.graph.generators import barabasi_albert
        from repro.graph.weights import assign_ic_weights

        src, dst = barabasi_albert(2000, 2, seed=4)
        g = assign_ic_weights(
            from_edge_array(src, dst, num_vertices=2000, make_undirected=True),
            seed=4, scale=0.15,
        )
        sets = [
            EfficientIMM(g).run(IMMParams(k=10, theta_cap=3000, seed=s)).seeds
            for s in (1, 2, 3)
        ]
        assert seed_stability(sets, min_mean_jaccard=0.3)

    def test_flat_graphs_stable_in_quality_not_identity(self, amazon_ic):
        # On community graphs without hubs many seed sets are near-optimal:
        # seed *identity* varies across RNG seeds, but the achieved spread
        # must not (the correct notion of stability there).
        from repro.core import EfficientIMM, IMMParams
        from repro.diffusion import estimate_spread, get_model

        model = get_model("IC", amazon_ic)
        spreads = [
            estimate_spread(
                model,
                EfficientIMM(amazon_ic)
                .run(IMMParams(k=10, theta_cap=800, seed=s))
                .seeds,
                num_samples=60,
                seed=50 + s,
            ).mean
            for s in (1, 2, 3)
        ]
        assert max(spreads) - min(spreads) < 0.1 * max(spreads)
