"""Tests for GraphBuilder normalisation (dedup, relabel, self-loops)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphConstructionError
from repro.graph.builder import GraphBuilder, from_edge_array


class TestBuilder:
    def test_dedup_keeps_first_probability(self):
        b = GraphBuilder(relabel=False)
        b.add_edges(np.array([0, 0]), np.array([1, 1]), np.array([0.3, 0.9]))
        g = b.build()
        assert g.num_edges == 1
        assert g.edge_probs(0)[0] == 0.3

    def test_self_loops_dropped(self):
        g = from_edge_array(np.array([0, 1]), np.array([0, 0]), num_vertices=2)
        assert g.num_edges == 1
        assert list(g.neighbors(1)) == [0]

    def test_self_loops_kept_when_disabled(self):
        b = GraphBuilder(relabel=False, drop_self_loops=False)
        b.add_edges(np.array([0]), np.array([0]))
        assert b.build().num_edges == 1

    def test_relabel_compacts_sparse_ids(self):
        b = GraphBuilder(relabel=True)
        b.add_edges(np.array([100, 5000]), np.array([5000, 9999]))
        g = b.build()
        assert g.num_vertices == 3
        assert np.array_equal(b.vertex_labels, [100, 5000, 9999])

    def test_relabel_preserves_structure(self):
        b = GraphBuilder(relabel=True)
        b.add_edges(np.array([10, 20]), np.array([20, 30]))
        g = b.build()
        # 10->20->30 must become 0->1->2.
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [2]

    def test_rows_sorted(self):
        b = GraphBuilder(relabel=False)
        b.add_edges(np.array([0, 0, 0]), np.array([5, 2, 9]))
        g = b.build()
        assert list(g.neighbors(0)) == [2, 5, 9]

    def test_add_edge_scalar(self):
        g = GraphBuilder(relabel=False).add_edge(0, 3, 0.7).build()
        assert g.num_vertices == 4
        assert g.edge_probs(0)[0] == 0.7

    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0

    def test_forced_num_vertices(self):
        g = from_edge_array(np.array([0]), np.array([1]), num_vertices=10)
        assert g.num_vertices == 10

    def test_rejects_id_above_forced_size(self):
        with pytest.raises(GraphConstructionError):
            from_edge_array(np.array([0]), np.array([11]), num_vertices=10)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphConstructionError):
            from_edge_array(np.array([-1]), np.array([0]))

    def test_rejects_length_mismatch(self):
        b = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            b.add_edges(np.array([0, 1]), np.array([1]))

    def test_rejects_probs_length_mismatch(self):
        b = GraphBuilder()
        with pytest.raises(GraphConstructionError):
            b.add_edges(np.array([0, 1]), np.array([1, 0]), np.array([0.5]))

    def test_scalar_prob_broadcast(self):
        b = GraphBuilder(relabel=False)
        b.add_edges(np.array([0, 1]), np.array([1, 2]), 0.25)
        g = b.build()
        assert np.all(g.probs == 0.25)

    def test_default_prob(self):
        b = GraphBuilder(relabel=False, default_prob=0.4)
        b.add_edges(np.array([0]), np.array([1]))
        assert b.build().probs[0] == 0.4

    def test_make_undirected_mirrors(self):
        g = from_edge_array(
            np.array([0]), np.array([1]), 0.5, make_undirected=True
        )
        assert g.num_edges == 2
        assert list(g.neighbors(1)) == [0]

    def test_multiple_batches_accumulate(self):
        b = GraphBuilder(relabel=False)
        b.add_edges(np.array([0]), np.array([1]))
        b.add_edges(np.array([1]), np.array([2]))
        assert b.build().num_edges == 2


class TestBuilderProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)),
            min_size=0, max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_canonical_form_invariants(self, pairs):
        src = np.array([u for u, _ in pairs], dtype=np.int64)
        dst = np.array([v for _, v in pairs], dtype=np.int64)
        g = from_edge_array(src, dst, num_vertices=41)
        # No self-loops, no duplicates, sorted rows.
        seen = set()
        for u, v, _ in g.iter_edges():
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))
        assert g.has_sorted_rows()

    @given(
        st.lists(
            st.tuples(st.integers(0, 25), st.integers(0, 25)),
            min_size=1, max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_relabel_is_isomorphic(self, pairs):
        src = np.array([u * 7 for u, _ in pairs], dtype=np.int64)
        dst = np.array([v * 7 + 3 for _, v in pairs], dtype=np.int64)
        b = GraphBuilder(relabel=True)
        b.add_edges(src, dst)
        g = b.build()
        labels = b.vertex_labels
        back = {
            (labels[u], labels[v]) for u, v, _ in g.iter_edges()
        }
        expected = {(u, v) for u, v in zip(src, dst) if u != v}
        assert back == expected
