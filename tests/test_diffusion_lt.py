"""Tests for the Linear Threshold model (forward + reverse)."""

import numpy as np
import pytest

from repro.diffusion.base import get_model
from repro.diffusion.lt import LTModel, _row_cumsum
from repro.errors import ParameterError
from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.weights import assign_lt_weights

from conftest import make_graph


class TestRowCumsum:
    def test_simple(self):
        g = make_graph([(0, 1, 0.2), (0, 2, 0.3), (1, 2, 0.5)], n=3)
        cum = _row_cumsum(g)
        # Row 0 has two edges (cumsum 0.2, 0.5), row 1 one edge (0.5).
        assert cum == pytest.approx([0.2, 0.5, 0.5])

    def test_empty(self, empty_graph):
        assert _row_cumsum(empty_graph).size == 0

    def test_rows_independent(self):
        g = make_graph([(0, 1, 0.9), (1, 2, 0.1)], n=3)
        assert _row_cumsum(g) == pytest.approx([0.9, 0.1])


class TestReverseSample:
    def test_is_a_path(self, rng):
        # Chain with full weights: the reverse walk from 3 is the whole chain.
        g = make_graph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], n=4)
        model = LTModel(g)
        rrr = model.reverse_sample(3, rng)
        assert rrr.tolist() == [3, 2, 1, 0]

    def test_stops_without_in_edges(self, rng):
        g = make_graph([(0, 1, 1.0)], n=2)
        model = LTModel(g)
        assert model.reverse_sample(0, rng).tolist() == [0]

    def test_no_activation_mass_stops_walk(self):
        g = make_graph([(0, 1, 0.0)], n=2)
        model = LTModel(g)
        rng = np.random.default_rng(0)
        for _ in range(30):
            assert model.reverse_sample(1, rng).tolist() == [1]

    def test_cycle_terminates(self, cycle_graph, rng):
        model = LTModel(cycle_graph)
        rrr = model.reverse_sample(0, rng)
        # Weight-1 cycle: the walk must wrap once and stop at revisit.
        assert rrr.size == 6
        assert len(set(rrr.tolist())) == 6

    def test_picks_in_neighbor_proportionally(self):
        # v=2 has in-edges from 0 (w=0.6) and 1 (w=0.2); stop mass 0.2.
        g = make_graph([(0, 2, 0.6), (1, 2, 0.2)], n=3)
        model = LTModel(g)
        rng = np.random.default_rng(3)
        picks = {0: 0, 1: 0, None: 0}
        for _ in range(5000):
            rrr = model.reverse_sample(2, rng).tolist()
            if len(rrr) == 1:
                picks[None] += 1
            else:
                picks[rrr[1]] += 1
        assert picks[0] / 5000 == pytest.approx(0.6, abs=0.03)
        assert picks[1] / 5000 == pytest.approx(0.2, abs=0.03)
        assert picks[None] / 5000 == pytest.approx(0.2, abs=0.03)

    def test_lt_sets_smaller_than_ic(self, amazon_lt, amazon_ic):
        # The §III observation that motivates everything: LT RRR sets are
        # tiny paths, IC sets are SCC-sized.
        rng = np.random.default_rng(7)
        lt = get_model("LT", amazon_lt)
        ic = get_model("IC", amazon_ic)
        lt_sizes = [lt.reverse_sample(lt.random_root(rng), rng).size for _ in range(30)]
        ic_sizes = [ic.reverse_sample(ic.random_root(rng), rng).size for _ in range(30)]
        assert np.mean(lt_sizes) < 0.05 * np.mean(ic_sizes)


class TestForwardSample:
    def test_weight_one_chain_propagates(self, rng):
        g = make_graph([(0, 1, 1.0), (1, 2, 1.0)], n=3)
        model = LTModel(g)
        out = model.forward_sample(np.array([0]), rng)
        assert sorted(out.tolist()) == [0, 1, 2]

    def test_zero_weights_never_activate(self):
        g = make_graph([(0, 1, 0.0)], n=2)
        model = LTModel(g)
        rng = np.random.default_rng(1)
        for _ in range(30):
            assert model.forward_sample(np.array([0]), rng).tolist() == [0]

    def test_threshold_monte_carlo(self):
        # Single edge weight 0.35: P(activate) = P(T_v <= 0.35) = 0.35.
        g = make_graph([(0, 1, 0.35)], n=2)
        model = LTModel(g)
        rng = np.random.default_rng(2)
        hits = sum(
            model.forward_sample(np.array([0]), rng).size == 2
            for _ in range(5000)
        )
        assert hits / 5000 == pytest.approx(0.35, abs=0.02)

    def test_additive_influence(self):
        # v=2 gets 0.5 from each parent: both seeded -> always activates
        # (threshold <= 1 almost surely); one seeded -> ~half the time.
        g = make_graph([(0, 2, 0.5), (1, 2, 0.5)], n=3)
        model = LTModel(g)
        rng = np.random.default_rng(3)
        both = sum(
            2 in model.forward_sample(np.array([0, 1]), rng).tolist()
            for _ in range(2000)
        )
        one = sum(
            2 in model.forward_sample(np.array([0]), rng).tolist()
            for _ in range(2000)
        )
        assert both / 2000 > 0.98
        assert one / 2000 == pytest.approx(0.5, abs=0.04)

    def test_seeds_preserved(self, isolated_graph, rng):
        model = LTModel(isolated_graph)
        assert sorted(
            model.forward_sample(np.array([1, 3]), rng).tolist()
        ) == [1, 3]


class TestFactory:
    def test_get_model_ic(self, amazon_ic):
        assert get_model("ic", amazon_ic).name == "IC"

    def test_get_model_lt(self, amazon_lt):
        assert get_model("lt", amazon_lt).name == "LT"

    def test_get_model_unknown(self, amazon_ic):
        with pytest.raises(ParameterError):
            get_model("SIS", amazon_ic)


class TestLTReverseForwardSymmetry:
    def test_symmetry_on_random_graph(self):
        src, dst = erdos_renyi(20, 60, seed=42)
        g = assign_lt_weights(
            from_edge_array(src, dst, num_vertices=20), seed=42
        )
        model = LTModel(g)
        rng = np.random.default_rng(0)
        u, v = 2, 11
        trials = 3000
        fwd = sum(
            v in model.forward_sample(np.array([u]), rng).tolist()
            for _ in range(trials)
        )
        rev = sum(
            u in model.reverse_sample(v, rng).tolist() for _ in range(trials)
        )
        assert abs(fwd - rev) / trials < 0.05
