"""Tests for the coherence (ownership-transfer) tracker."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.simmachine.coherence import CoherenceTracker


class TestCoherenceTracker:
    def test_first_write_no_invalidation(self):
        t = CoherenceTracker(2)
        assert t.write(0, np.array([0, 64, 128])) == 0

    def test_ping_pong_invalidates(self):
        t = CoherenceTracker(2)
        t.write(0, np.array([0]))
        assert t.write(1, np.array([0])) == 1
        assert t.write(0, np.array([0])) == 1
        assert t.stats.invalidations == 2

    def test_same_thread_rewrites_free(self):
        t = CoherenceTracker(2)
        t.write(0, np.array([0]))
        assert t.write(0, np.array([0, 8, 16])) == 0  # same line, same owner

    def test_false_sharing_within_line(self):
        # Two threads writing *different* counters in the same 64 B line.
        t = CoherenceTracker(2)
        t.write(0, np.array([0]))  # counter 0
        assert t.write(1, np.array([8])) == 1  # counter 1, same line

    def test_disjoint_lines_no_invalidation(self):
        t = CoherenceTracker(4)
        for w in range(4):
            assert t.write(w, np.array([w * 64])) == 0

    def test_read_downgrades_exclusive(self):
        t = CoherenceTracker(2)
        t.write(0, np.array([0]))
        assert t.read(1, np.array([0])) == 1
        # Once shared, further reads are free.
        assert t.read(1, np.array([0])) == 0
        assert t.read(0, np.array([0])) == 0

    def test_write_after_shared_counts_once(self):
        t = CoherenceTracker(2)
        t.write(0, np.array([0]))
        t.read(1, np.array([0]))  # downgrade to shared
        inv = t.write(1, np.array([0]))
        assert inv == 1  # must reclaim ownership from the shared state

    def test_per_thread_attribution(self):
        t = CoherenceTracker(3)
        t.write(0, np.array([0]))
        t.write(1, np.array([0]))
        t.write(2, np.array([0]))
        assert t.stats.per_thread_invalidations.tolist() == [0, 1, 1]

    def test_false_sharing_fraction(self):
        t = CoherenceTracker(2)
        t.write(0, np.array([0, 64]))
        t.write(1, np.array([0, 64]))
        assert t.false_sharing_fraction() == pytest.approx(0.5)

    def test_transfer_cost(self):
        t = CoherenceTracker(2)
        t.write(0, np.array([0]))
        t.write(1, np.array([0]))
        assert t.stats.transfer_ns(50.0) == pytest.approx(50.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            CoherenceTracker(0)
        with pytest.raises(ParameterError):
            CoherenceTracker(2, line_bytes=48)
        t = CoherenceTracker(2)
        with pytest.raises(ParameterError):
            t.write(5, np.array([0]))


class TestCounterContention:
    """The §IV-A claim, quantified: a shared global counter pays ownership
    transfers proportional to cross-thread overlap of the updated lines."""

    def test_partitioned_counters_cheaper_than_shared_hot(self):
        rng = np.random.default_rng(0)
        num_threads, n = 4, 1024

        # Shared-hot: every thread updates the same hub counters, and the
        # updates interleave in time (concurrent execution), so ownership
        # ping-pongs on every burst.
        shared = CoherenceTracker(num_threads)
        hubs = rng.integers(0, 8, size=200) * 8  # same hot line region
        for i in range(50):
            for w in range(num_threads):
                shared.write(w, hubs[4 * i : 4 * i + 4])

        # Partitioned: each thread updates only its own counter range.
        part = CoherenceTracker(num_threads)
        for w in range(num_threads):
            base = w * (n // num_threads) * 8
            part.write(w, base + rng.integers(0, n // num_threads, size=200) * 8)

        assert part.stats.invalidations == 0
        assert shared.stats.invalidations > 100

    def test_efficientimm_counter_updates_realistic(self, amazon_ic):
        """Replay real decrement traffic: hub-heavy updates do ping-pong,
        but the 64-bit-grain atomics keep the fraction bounded."""
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model
        from repro.runtime.partition import block_partition

        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=0
        )
        sampler.extend(40)
        store = sampler.store
        tracker = CoherenceTracker(4)
        bounds = block_partition(len(store), 4)
        for w, (lo, hi) in enumerate(bounds):
            for i in range(lo, hi):
                tracker.write(w, store.get(i).astype(np.int64) * 8)
        assert tracker.stats.writes == store.total_entries
        assert 0.0 < tracker.false_sharing_fraction() <= 1.0
