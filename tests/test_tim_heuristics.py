"""Tests for the TIM baseline and the classic heuristics."""

import numpy as np
import pytest

from repro.core import EfficientIMM, IMMParams
from repro.core.heuristics import (
    degree_discount,
    random_seeds,
    single_discount,
    top_degree,
)
from repro.core.tim import estimate_kpt, run_tim
from repro.errors import ParameterError

from conftest import make_graph


class TestTopDegree:
    def test_picks_hub(self, star_graph):
        assert top_degree(star_graph, 1).tolist() == [0]

    def test_tie_break_lowest_id(self, cycle_graph):
        assert top_degree(cycle_graph, 3).tolist() == [0, 1, 2]

    def test_rejects_k_above_n(self, star_graph):
        with pytest.raises(ParameterError):
            top_degree(star_graph, 100)


class TestRandomSeeds:
    def test_no_replacement(self, star_graph):
        s = random_seeds(star_graph, 9, seed=0)
        assert len(set(s.tolist())) == 9

    def test_deterministic(self, star_graph):
        a = random_seeds(star_graph, 4, seed=1)
        b = random_seeds(star_graph, 4, seed=1)
        assert np.array_equal(a, b)


def _hub_pair_graph():
    """Hub 0 adjacent to hub 9 (and leaves); hub 5 disjoint.

    Degrees: 0 -> 5, 9 -> 4, 5 -> 3.  Pure degree picks [0, 9]; discounting
    heuristics penalise 9 for its adjacency to the selected 0 and pick the
    disjoint hub 5 instead.
    """
    und = (
        [(0, i) for i in (1, 2, 3, 4, 9)]
        + [(9, i) for i in (10, 11, 12)]
        + [(5, i) for i in (6, 7, 8)]
    )
    edges = [(u, v, 1.0) for u, v in und] + [(v, u, 1.0) for u, v in und]
    return make_graph(edges, n=13)


class TestSingleDiscount:
    def test_discounts_adjacent_hub(self):
        g = _hub_pair_graph()
        assert top_degree(g, 2).tolist() == [0, 9]  # the naive pick
        assert single_discount(g, 2).tolist() == [0, 5]

    def test_without_overlap_matches_degree(self, two_triangles):
        assert set(single_discount(two_triangles, 2).tolist()) == set(
            top_degree(two_triangles, 2).tolist()
        )

    def test_seed_count(self, amazon_ic):
        assert single_discount(amazon_ic, 7).size == 7


class TestDegreeDiscount:
    def test_matches_kdd09_formula_direction(self):
        g = _hub_pair_graph()
        assert degree_discount(g, 2, propagation_p=0.3).tolist() == [0, 5]

    def test_uses_graph_mean_probability(self, amazon_ic):
        s = degree_discount(amazon_ic, 5)
        assert s.size == 5
        assert len(set(s.tolist())) == 5

    def test_explicit_p(self, star_graph):
        assert degree_discount(star_graph, 1, propagation_p=0.1).tolist() == [0]

    def test_rejects_bad_p(self, star_graph):
        with pytest.raises(ParameterError):
            degree_discount(star_graph, 1, propagation_p=1.5)

    def test_quality_beats_random(self, amazon_ic):
        from repro.diffusion import estimate_spread, get_model

        model = get_model("IC", amazon_ic)
        dd = estimate_spread(
            model, degree_discount(amazon_ic, 8), num_samples=50, seed=1
        ).mean
        rnd = estimate_spread(
            model, random_seeds(amazon_ic, 8, seed=2), num_samples=50, seed=1
        ).mean
        assert dd >= rnd * 0.9  # dd should not lose meaningfully


class TestKPT:
    def test_kpt_bounds(self, amazon_ic):
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model

        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=0
        )
        kpt = estimate_kpt(amazon_ic, sampler, 10, 1.0, theta_cap=500)
        # KPT estimates the mean single-vertex spread: within (1, n].
        assert 1.0 <= kpt <= amazon_ic.num_vertices

    def test_kpt_reflects_connectivity(self):
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model
        from repro.graph.builder import from_edge_array
        from repro.graph.generators import erdos_renyi

        def kpt_for(num_edges, seed):
            src, dst = erdos_renyi(300, num_edges, seed=seed)
            g = from_edge_array(src, dst, 1.0, num_vertices=300)
            s = RRRSampler(
                get_model("IC", g), SamplingConfig.efficientimm(), seed=seed
            )
            return estimate_kpt(g, s, 5, 1.0, theta_cap=400)

        assert kpt_for(1500, 3) > kpt_for(100, 3)

    def test_empty_graph(self, isolated_graph):
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model

        sampler = RRRSampler(
            get_model("IC", isolated_graph),
            SamplingConfig.efficientimm(),
            seed=0,
        )
        assert estimate_kpt(isolated_graph, sampler, 2, 1.0) == 1.0


class TestRunTim:
    def test_seed_count(self, amazon_ic):
        res = run_tim(amazon_ic, IMMParams(k=6, theta_cap=900, seed=1))
        assert res.seeds.size == 6
        assert len(set(res.seeds.tolist())) == 6

    def test_determinism(self, amazon_ic):
        params = IMMParams(k=4, theta_cap=600, seed=2)
        a, b = run_tim(amazon_ic, params), run_tim(amazon_ic, params)
        assert np.array_equal(a.seeds, b.seeds)
        assert a.kpt == b.kpt

    def test_theta_looser_than_imm(self, amazon_ic):
        """The historical point: TIM needs more samples than IMM for the
        same (epsilon, ell) guarantee."""
        params = IMMParams(k=6, epsilon=0.5, theta_cap=10**7, seed=3)
        tim = run_tim(amazon_ic, IMMParams(k=6, epsilon=0.5, theta_cap=900, seed=3))
        imm = EfficientIMM(amazon_ic).run(
            IMMParams(k=6, epsilon=0.5, theta_cap=3000, seed=3)
        )
        del params
        assert tim.theta > imm.theta  # uncapped requirement comparison

    def test_quality_comparable_to_imm(self, amazon_ic):
        from repro.diffusion import estimate_spread, get_model

        tim = run_tim(amazon_ic, IMMParams(k=6, theta_cap=900, seed=4))
        imm = EfficientIMM(amazon_ic).run(
            IMMParams(k=6, theta_cap=900, seed=4)
        )
        model = get_model("IC", amazon_ic)
        s_tim = estimate_spread(model, tim.seeds, num_samples=60, seed=5).mean
        s_imm = estimate_spread(model, imm.seeds, num_samples=60, seed=5).mean
        assert s_tim >= 0.85 * s_imm

    def test_times_recorded(self, amazon_ic):
        res = run_tim(amazon_ic, IMMParams(k=3, theta_cap=400, seed=6))
        assert "KPT_Estimation" in res.times.stages
        assert res.theta_capped  # the real theta far exceeds this cap

    def test_rejects_k_above_n(self, isolated_graph):
        with pytest.raises(ParameterError):
            run_tim(isolated_graph, IMMParams(k=99, theta_cap=10))
