"""Tests for RRR-set representations and the adaptive policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.sketch.rrr import AdaptivePolicy, BitmapRRR, ListRRR, make_rrr


class TestListRRR:
    def test_sorts_input(self):
        r = ListRRR(np.array([5, 1, 3]), 10)
        assert r.vertices().tolist() == [1, 3, 5]

    def test_presorted_skips_sort(self):
        r = ListRRR(np.array([1, 3, 5]), 10, presorted=True)
        assert r.vertices().tolist() == [1, 3, 5]

    def test_contains(self):
        r = ListRRR(np.array([2, 4, 6]), 10)
        assert r.contains(4)
        assert not r.contains(5)
        assert not r.contains(9)

    def test_contains_many(self):
        r = ListRRR(np.array([2, 4, 6]), 10)
        got = r.contains_many(np.array([0, 2, 5, 6, 9]))
        assert got.tolist() == [False, True, False, True, False]

    def test_empty(self):
        r = ListRRR(np.array([], dtype=np.int32), 10)
        assert r.size == 0
        assert not r.contains(0)
        assert not r.contains_many(np.array([0, 1])).any()

    def test_nbytes(self):
        assert ListRRR(np.arange(100), 1000).nbytes() == 400

    def test_coverage(self):
        assert ListRRR(np.arange(25), 100).coverage == 0.25


class TestBitmapRRR:
    def test_contains(self):
        r = BitmapRRR(np.array([0, 7, 63]), 64)
        assert r.contains(0) and r.contains(7) and r.contains(63)
        assert not r.contains(1)

    def test_out_of_universe_contains_false(self):
        r = BitmapRRR(np.array([1]), 8)
        assert not r.contains(-1)
        assert not r.contains(8)

    def test_vertices_sorted(self):
        r = BitmapRRR(np.array([9, 3, 7]), 16)
        assert r.vertices().tolist() == [3, 7, 9]

    def test_contains_many(self):
        r = BitmapRRR(np.array([1, 5]), 8)
        assert r.contains_many(np.array([0, 1, 5, 7])).tolist() == [
            False, True, True, False,
        ]

    def test_duplicates_collapse(self):
        r = BitmapRRR(np.array([3, 3, 3]), 8)
        assert r.size == 1

    def test_nbytes_independent_of_size(self):
        a = BitmapRRR(np.array([1]), 1024)
        b = BitmapRRR(np.arange(1000), 1024)
        assert a.nbytes() == b.nbytes() == 128

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            BitmapRRR(np.array([8]), 8)


class TestAdaptivePolicy:
    def test_default_threshold_is_memory_crossover(self):
        # 4-byte ids vs n/8-byte bitmap: crossover at n/32.
        p = AdaptivePolicy()
        assert p.threshold(3200) == 100

    def test_choose(self):
        p = AdaptivePolicy(bitmap_fraction=0.1)
        assert p.choose(5, 100) == "list"
        assert p.choose(11, 100) == "bitmap"

    def test_rejects_bad_fraction(self):
        with pytest.raises(ParameterError):
            AdaptivePolicy(bitmap_fraction=0.0)
        with pytest.raises(ParameterError):
            AdaptivePolicy(bitmap_fraction=1.5)

    def test_make_rrr_adaptive_small(self):
        r = make_rrr(np.arange(3), 1000)
        assert r.kind == "list"

    def test_make_rrr_adaptive_dense(self):
        r = make_rrr(np.arange(500), 1000)
        assert r.kind == "bitmap"

    def test_make_rrr_forced_kind(self):
        r = make_rrr(np.arange(500), 1000, kind="list")
        assert r.kind == "list"

    def test_make_rrr_unknown_kind(self):
        with pytest.raises(ParameterError):
            make_rrr(np.arange(3), 10, kind="roaring")

    def test_adaptive_picks_smaller_representation(self):
        # At the threshold the two must cost the same order; beyond it the
        # bitmap must be no larger than the list it replaced.
        n = 3200
        big = make_rrr(np.arange(200), n)
        assert big.kind == "bitmap"
        assert big.nbytes() <= ListRRR(np.arange(200), n).nbytes()


@st.composite
def vertex_sets(draw):
    n = draw(st.integers(8, 200))
    verts = draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=n, unique=True)
    )
    return n, np.asarray(verts, dtype=np.int32)


class TestRepresentationEquivalence:
    """Both representations must be observationally identical."""

    @given(vertex_sets())
    @settings(max_examples=80, deadline=None)
    def test_same_vertices(self, data):
        n, verts = data
        lst, bmp = ListRRR(verts, n), BitmapRRR(verts, n)
        assert np.array_equal(lst.vertices(), bmp.vertices())
        assert lst.size == bmp.size

    @given(vertex_sets())
    @settings(max_examples=80, deadline=None)
    def test_same_membership(self, data):
        n, verts = data
        lst, bmp = ListRRR(verts, n), BitmapRRR(verts, n)
        probes = np.arange(n)
        assert np.array_equal(
            lst.contains_many(probes), bmp.contains_many(probes)
        )

    @given(vertex_sets())
    @settings(max_examples=40, deadline=None)
    def test_adaptive_matches_either(self, data):
        n, verts = data
        adaptive = make_rrr(verts, n)
        reference = ListRRR(verts, n)
        assert np.array_equal(adaptive.vertices(), reference.vertices())
