"""Drift guards: CLI verb listing, dispatch table, and documented exit codes.

These tests exist because the verb listing, ``main()``'s dispatch dict, and
the exit-code table in docs/resilience.md are maintained by hand in three
places; each has silently drifted before.
"""

import inspect
import re
from pathlib import Path

import pytest

import repro.cli as cli
import repro.errors as errors

DOCS = Path(__file__).resolve().parent.parent / "docs"


class TestVerbSurface:
    def test_every_verb_dispatched(self):
        """Each parser subcommand has an entry in main()'s dispatch dict."""
        src = inspect.getsource(cli.main)
        for verb in cli.command_help():
            assert f'"{verb}":' in src, f"verb {verb!r} missing from dispatch"

    def test_every_verb_has_help(self):
        for verb, text in cli.command_help().items():
            assert text.strip(), f"verb {verb!r} has no help string"

    def test_expected_verbs_present(self):
        verbs = set(cli.command_help())
        assert {
            "list", "datasets", "experiment", "run", "trace", "sweep",
            "extract-results", "validate", "query", "serve", "update",
            "shard", "gateway", "shm", "control",
        } <= verbs

    def test_control_parser_accepts_documented_flags(self):
        args = cli.build_parser().parse_args(
            [
                "control", "run", "amazon", "--shards", "2", "--replicas",
                "2", "--theta-cap", "500", "--ticks", "3", "--interval",
                "0.5", "--dry-run", "--p99-slo", "0.2", "--shed-slo", "2",
                "--min-replicas", "1", "--max-replicas", "3",
                "--breach-ticks", "2", "--idle-ticks", "4", "--cooldown",
                "6", "--memory-budget", "1000000", "--inject-faults",
                "crash@action:0", "--fault-seed", "7", "--telemetry", "tel",
            ]
        )
        assert args.command == "control" and args.action == "run"
        assert args.dry_run and args.max_replicas == 3
        assert args.memory_budget == 1000000

        args = cli.build_parser().parse_args(
            ["control", "plan", "--fixture", "probe.jsonl"]
        )
        assert args.action == "plan" and args.fixture == "probe.jsonl"

    def test_shm_parser_accepts_documented_flags(self):
        args = cli.build_parser().parse_args(
            ["shm", "sweep", "--prefix", "rs"]
        )
        assert args.command == "shm" and args.action == "sweep"
        assert args.prefix == "rs"

    def test_list_output_names_every_verb(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for verb in cli.command_help():
            assert re.search(rf"^\s*{re.escape(verb)}\b", out, re.M), (
                f"verb {verb!r} not shown by `repro list`"
            )

    def test_update_parser_accepts_documented_flags(self):
        args = cli.build_parser().parse_args(
            [
                "update", "amazon", "--updates", "u.jsonl", "--model", "LT",
                "--k", "5", "--seed", "3", "--theta-cap", "100",
                "--threshold", "0.5", "--repair", "resample",
                "--checkpoint", "ck", "--resume", "--telemetry", "tel",
            ]
        )
        assert args.command == "update" and args.dataset == "amazon"
        assert args.repair == "resample" and args.resume

    def test_gateway_parser_accepts_documented_flags(self):
        args = cli.build_parser().parse_args(
            [
                "gateway", "serve", "--host", "0.0.0.0", "--port", "0",
                "--shards", "2", "--replicas", "2", "--default-theta", "500",
                "--max-connections", "8", "--queue-depth", "4",
                "--queue-deadline", "0.5", "--batch-window", "0.01",
                "--batch-max", "16", "--rate-limit", "20", "--rate-burst",
                "5", "--max-line-bytes", "4096", "--idle-timeout", "60",
                "--telemetry", "tel",
            ]
        )
        assert args.command == "gateway" and args.action == "serve"
        assert args.queue_depth == 4 and args.rate_limit == 20.0

        args = cli.build_parser().parse_args(
            [
                "gateway", "loadgen", "--mode", "open", "--rate", "200",
                "--concurrency", "8", "--duration", "2", "--requests", "50",
                "--zipf", "1.5", "--deadline", "0.5",
            ]
        )
        assert args.mode == "open" and args.requests == 50

    def test_gateway_default_port_matches_client(self):
        from repro.gateway.client import DEFAULT_PORT

        args = cli.build_parser().parse_args(["gateway", "serve"])
        assert args.port == DEFAULT_PORT


def error_classes():
    """All concrete ReproError subclasses exported by repro.errors."""
    out = []
    for name in dir(errors):
        obj = getattr(errors, name)
        if (
            inspect.isclass(obj)
            and issubclass(obj, errors.ReproError)
            and obj is not errors.ReproError
        ):
            out.append(obj)
    return out


class TestExitCodeDocs:
    @pytest.fixture(scope="class")
    def documented(self):
        """class name -> documented exit code, from docs/resilience.md."""
        text = (DOCS / "resilience.md").read_text()
        table = {}
        for line in text.splitlines():
            m = re.match(r"\|\s*(\d+)\s*\|(.+?)\|", line)
            if not m:
                continue
            code = int(m.group(1))
            for cls in re.findall(r"`(\w+)`", m.group(2)):
                table[cls] = code
        assert table, "no exit-code table found in docs/resilience.md"
        return table

    def test_every_error_class_documented(self, documented):
        for cls in error_classes():
            assert cls.__name__ in documented, (
                f"{cls.__name__} missing from the docs/resilience.md "
                "exit-code table"
            )

    def test_documented_codes_match_classes(self, documented):
        for cls in error_classes():
            assert documented[cls.__name__] == cls.exit_code, (
                f"{cls.__name__}: docs say exit "
                f"{documented[cls.__name__]}, class says {cls.exit_code}"
            )

    def test_no_stale_documented_classes(self, documented):
        known = {c.__name__ for c in error_classes()} | {"ReproError"}
        for name in documented:
            assert name in known, (
                f"docs/resilience.md documents unknown error class {name}"
            )

    def test_generic_exit_documented(self, documented):
        assert documented.get("ReproError") == 1


class TestGeneratedCliReference:
    """docs/cli.md is generated from the parser; these guards catch drift."""

    def test_cli_md_matches_parser(self):
        fresh = cli.render_cli_reference()
        on_disk = (DOCS / "cli.md").read_text()
        assert on_disk == fresh, (
            "docs/cli.md has drifted from the argparse surface; "
            "run: python tools/gen_cli_docs.py"
        )

    def test_reference_covers_every_verb(self):
        fresh = cli.render_cli_reference()
        for verb in cli.command_help():
            assert f"## `repro {verb}`" in fresh, verb

    def test_reference_covers_every_exit_code(self):
        fresh = cli.render_cli_reference()
        for cls in error_classes():
            assert f"`{cls.__name__}`" in fresh, cls.__name__

    def test_render_is_deterministic_across_terminal_widths(self):
        import os

        saved = os.environ.get("COLUMNS")
        try:
            os.environ["COLUMNS"] = "200"
            wide = cli.render_cli_reference()
            os.environ["COLUMNS"] = "40"
            narrow = cli.render_cli_reference()
        finally:
            if saved is None:
                os.environ.pop("COLUMNS", None)
            else:
                os.environ["COLUMNS"] = saved
        assert wide == narrow

    def test_kernel_flags_on_sampling_verbs(self):
        for verb in ("run", "trace", "query", "serve", "shard", "gateway",
                     "update"):
            page = cli.render_cli_reference()
            section = page.split(f"## `repro {verb}`")[1].split("## `repro")[0]
            assert "--kernel" in section, verb
            assert "--kernel-batch" in section, verb
