"""Tests for the unified execution API (BackendConfig / ExecutionContext)
and the deprecation shims that keep the pre-redesign call forms working."""

import pytest

from repro.errors import BackendError, ParameterError
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy
from repro.runtime.api import BackendConfig, ExecutionContext
from repro.runtime.backends import (
    MultiprocessBackend,
    SerialBackend,
    make_backend,
)
from repro.runtime.workqueue import ChunkedWorkQueue
from repro.service import EngineConfig, QueryEngine


def _square(x):
    return x * x


# ------------------------------------------------------------- BackendConfig
class TestBackendConfig:
    def test_defaults(self):
        cfg = BackendConfig()
        assert cfg.backend == "serial"
        assert cfg.num_workers is None
        assert cfg.chunk_size == 1
        assert cfg.retry is None and cfg.faults is None

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            BackendConfig("serial")

    def test_rejects_unknown_backend(self):
        with pytest.raises(BackendError, match="unknown backend"):
            BackendConfig(backend="gpu")

    def test_rejects_bad_num_workers(self):
        for bad in (0, -1, -7):
            with pytest.raises(BackendError, match="num_workers"):
                BackendConfig(num_workers=bad)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ParameterError, match="chunk_size"):
            BackendConfig(chunk_size=0)

    def test_frozen(self):
        cfg = BackendConfig()
        with pytest.raises(AttributeError):
            cfg.backend = "multiprocess"

    def test_with_overrides(self):
        cfg = BackendConfig(backend="serial", chunk_size=4)
        out = cfg.with_overrides(num_workers=3)
        assert out.num_workers == 3 and out.chunk_size == 4
        assert cfg.num_workers is None  # original untouched

    def test_with_overrides_revalidates(self):
        with pytest.raises(BackendError):
            BackendConfig().with_overrides(backend="tpu")


# ---------------------------------------------------------- ExecutionContext
class TestExecutionContext:
    def test_default_is_serial(self):
        with ExecutionContext() as ctx:
            assert isinstance(ctx.backend, SerialBackend)
            assert ctx.run_tasks(_square, [1, 2, 3]) == [1, 4, 9]

    def test_backend_built_lazily(self):
        ctx = ExecutionContext(
            BackendConfig(backend="multiprocess", num_workers=2)
        )
        assert ctx._backend is None  # described, not built
        assert ctx.num_workers == 2  # answered from the config alone
        assert ctx.run_tasks(_square, [3]) == [9]  # forces the build
        assert isinstance(ctx._backend, MultiprocessBackend)
        ctx.close()

    def test_close_releases_and_rebuilds(self):
        ctx = ExecutionContext(BackendConfig(backend="serial"))
        first = ctx.backend
        ctx.close()
        assert ctx._backend is None
        assert ctx.backend is not first  # lazily rebuilt on next touch

    def test_wrapped_backend_not_closed(self):
        with MultiprocessBackend(1) as b:
            ctx = ExecutionContext(backend=b)
            assert ctx.run_tasks(_square, [2]) == [4]
            ctx.close()
            # The context never owned it; the backend stays serviceable.
            assert b.run_tasks(_square, [3]) == [9]

    def test_wrapping_installs_config_resilience(self):
        retry = RetryPolicy(max_attempts=2)
        plan = FaultPlan([FaultSpec(kind="crash", index=0)])
        b = SerialBackend()
        ExecutionContext(BackendConfig(retry=retry, faults=plan), backend=b)
        assert b.retry_policy is retry and b.fault_plan is plan

    def test_wrapping_keeps_existing_resilience(self):
        own = RetryPolicy(max_attempts=5)
        b = SerialBackend()
        b.retry_policy = own
        ExecutionContext(
            BackendConfig(retry=RetryPolicy(max_attempts=2)), backend=b
        )
        assert b.retry_policy is own  # the backend's own policy wins

    def test_make_workqueue_matches_config(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=1, scope="rank")])
        ctx = ExecutionContext(
            BackendConfig(num_workers=2, chunk_size=5, faults=plan)
        )
        q = ctx.make_workqueue(10)
        assert q.num_workers == 2
        assert q.remaining() == 2  # 10 items / chunk 5
        assert q.fault_plan is plan
        ctx.close()

    def test_config_factory_builds_with_resilience(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=0, times=1)])
        retry = RetryPolicy(max_attempts=2)
        with ExecutionContext(BackendConfig(retry=retry, faults=plan)) as ctx:
            assert ctx.run_tasks(_square, [4]) == [16]  # fault fired, retried
        assert plan.injected == 1


# -------------------------------------------------------- deprecation shims
class TestDeprecationShims:
    """Old positional call forms still work but warn; pyproject escalates
    the warning to an error for in-repo callers, so everything here goes
    through pytest.warns."""

    def test_make_backend_positional_name(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            b = make_backend("serial")
        assert isinstance(b, SerialBackend)

    def test_make_backend_positional_with_workers(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            b = make_backend("multiprocess", 1)
        assert b.num_workers == 1
        b.close()

    def test_make_backend_no_args_defaults_serial(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            assert isinstance(make_backend(), SerialBackend)

    def test_make_backend_config_plus_extras_rejected(self):
        with pytest.raises(BackendError, match="no extra arguments"):
            make_backend(BackendConfig(), num_workers=2)

    def test_workqueue_positional(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            q = ChunkedWorkQueue(10, 2, 5)
        assert q.num_workers == 2 and q.remaining() == 2

    def test_workqueue_positional_workers_only(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            q = ChunkedWorkQueue(4, 2)
        assert q.remaining() == 4  # chunk_size defaults to 1

    def test_workqueue_too_many_positionals(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            with pytest.raises(ParameterError, match="positional"):
                ChunkedWorkQueue(10, 2, 5, 7)

    def test_workqueue_config_form(self):
        cfg = BackendConfig(num_workers=2, chunk_size=5)
        q = ChunkedWorkQueue(10, config=cfg)
        assert q.num_workers == 2 and q.remaining() == 2

    def test_workqueue_kwargs_override_config(self):
        cfg = BackendConfig(num_workers=2, chunk_size=5)
        q = ChunkedWorkQueue(10, config=cfg, chunk_size=2)
        assert q.remaining() == 5

    def test_workqueue_requires_workers_somewhere(self):
        with pytest.raises(ParameterError, match="num_workers"):
            ChunkedWorkQueue(10)

    def test_query_engine_positional(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            eng = QueryEngine(EngineConfig(default_theta=300))
        assert eng.config.default_theta == 300
        eng.close()

    def test_query_engine_positional_and_keyword_rejected(self):
        with pytest.warns(DeprecationWarning, match="repro execution API"):
            with pytest.raises(ParameterError):
                QueryEngine(EngineConfig(), config=EngineConfig())

    def test_query_engine_accepts_external_context(self):
        ctx = ExecutionContext(BackendConfig(telemetry_label="service"))
        eng = QueryEngine(config=EngineConfig(default_theta=300), context=ctx)
        assert eng.context is ctx
        eng.close()
