"""Tests for memory layout and NUMA placement policies."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simmachine.layout import PAGE_BYTES, MemoryLayout, NumaPlacement
from repro.simmachine.topology import perlmutter


class TestMemoryLayout:
    def test_page_aligned_allocations(self):
        lay = MemoryLayout()
        a = lay.allocate("a", 100)
        b = lay.allocate("b", 100)
        assert a % PAGE_BYTES == 0
        assert b % PAGE_BYTES == 0
        assert b >= a + PAGE_BYTES

    def test_zero_address_reserved(self):
        lay = MemoryLayout()
        assert lay.allocate("a", 10) >= PAGE_BYTES

    def test_duplicate_name_rejected(self):
        lay = MemoryLayout()
        lay.allocate("a", 10)
        with pytest.raises(SimulationError):
            lay.allocate("a", 10)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError):
            MemoryLayout().allocate("a", 10, policy="striped")

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            MemoryLayout().allocate("a", -1)

    def test_element_addresses(self):
        lay = MemoryLayout()
        base = lay.allocate("arr", 800)
        addrs = lay.element_addresses("arr", np.array([0, 3]), itemsize=8)
        assert addrs.tolist() == [base, base + 24]

    def test_region_of(self):
        lay = MemoryLayout()
        lay.allocate("a", 10)
        lay.allocate("b", 10)
        regions = lay.region_of(np.array([lay.base("b")]))
        assert regions[0].name == "b"

    def test_region_of_unmapped(self):
        lay = MemoryLayout()
        lay.allocate("a", 10)
        with pytest.raises(SimulationError):
            lay.region_of(np.array([0]))


class TestNumaPlacement:
    def setup_method(self):
        self.topo = perlmutter()
        self.lay = MemoryLayout()

    def test_bind_policy_single_home(self):
        self.lay.allocate("a", 10 * PAGE_BYTES, policy="bind", home=2)
        pl = NumaPlacement(self.lay, self.topo)
        addrs = self.lay.base("a") + np.arange(5) * PAGE_BYTES
        assert np.all(pl.home_nodes(addrs, accessor_node=0) == 2)

    def test_interleave_round_robin(self):
        self.lay.allocate("a", 16 * PAGE_BYTES, policy="interleave")
        pl = NumaPlacement(self.lay, self.topo)
        addrs = self.lay.base("a") + np.arange(16) * PAGE_BYTES
        homes = pl.home_nodes(addrs, accessor_node=0)
        assert len(set(homes.tolist())) == 8  # all 8 nodes used
        # Consecutive pages land on consecutive nodes.
        assert np.all(np.diff(homes) % 8 == 1)

    def test_local_policy_follows_accessor(self):
        self.lay.allocate("a", PAGE_BYTES, policy="local")
        pl = NumaPlacement(self.lay, self.topo)
        addrs = np.array([self.lay.base("a")])
        assert pl.home_nodes(addrs, accessor_node=5).tolist() == [5]
        assert pl.home_nodes(addrs, accessor_node=2).tolist() == [2]

    def test_first_touch_home(self):
        self.lay.allocate("a", PAGE_BYTES, policy="first_touch", home=6)
        pl = NumaPlacement(self.lay, self.topo)
        assert pl.home_nodes(
            np.array([self.lay.base("a")]), accessor_node=0
        ).tolist() == [6]

    def test_dram_latencies_by_distance(self):
        self.lay.allocate("a", PAGE_BYTES, policy="bind", home=0)
        pl = NumaPlacement(self.lay, self.topo)
        addr = np.array([self.lay.base("a")])
        local = pl.dram_latencies_ns(addr, core=0)[0]
        same_socket = pl.dram_latencies_ns(addr, core=16)[0]
        cross = pl.dram_latencies_ns(addr, core=127)[0]
        assert local == self.topo.dram_local_ns
        assert same_socket == self.topo.remote_ns
        assert cross == self.topo.cross_socket_ns

    def test_local_policy_always_local_latency(self):
        self.lay.allocate("a", PAGE_BYTES, policy="local")
        pl = NumaPlacement(self.lay, self.topo)
        addr = np.array([self.lay.base("a")])
        for core in (0, 33, 127):
            assert pl.dram_latencies_ns(addr, core)[0] == self.topo.dram_local_ns
