"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.figures import ascii_chart, scaling_chart
from repro.errors import ParameterError


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart(
            {"a": ([1, 2, 4, 8], [1.0, 2.0, 3.5, 4.0])},
            width=40, height=8, title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert any("o" in line for line in lines)
        assert "o=a" in lines[-1]

    def test_two_series_distinct_markers(self):
        out = ascii_chart(
            {
                "up": ([1, 2, 3], [1.0, 2.0, 3.0]),
                "down": ([1, 2, 3], [3.0, 2.0, 1.0]),
            },
            width=30, height=6,
        )
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_log_x_labels(self):
        out = ascii_chart(
            {"a": ([1, 128], [1.0, 2.0])}, log_x=True, width=30, height=5
        )
        assert "128" in out
        assert out.splitlines()[-2].strip().startswith("1")

    def test_y_extent_labels(self):
        out = ascii_chart(
            {"a": ([0, 1], [0.25, 7.5])}, width=20, height=5
        )
        assert "7.5" in out and "0.25" in out

    def test_flat_series_ok(self):
        out = ascii_chart({"a": ([1, 2, 3], [5.0, 5.0, 5.0])}, width=20, height=4)
        assert "o" in out

    def test_single_point(self):
        out = ascii_chart({"a": ([1], [2.0])}, width=10, height=4)
        assert "o" in out

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            ascii_chart({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            ascii_chart({"a": ([1, 2], [1.0])})

    def test_rejects_too_many_series(self):
        series = {f"s{i}": ([1, 2], [1.0, 2.0]) for i in range(9)}
        with pytest.raises(ParameterError):
            ascii_chart(series)

    def test_markers_within_grid(self):
        out = ascii_chart(
            {"a": ([1, 2, 4, 8, 16], [1, 4, 9, 16, 25])},
            width=25, height=7, log_x=True,
        )
        for line in out.splitlines():
            assert len(line) < 25 + 20  # label gutter + grid width bound


class TestScalingChart:
    def test_renders_curves(self):
        from repro.simmachine.cost import ScalingCurve

        curve = ScalingCurve(
            label="x", thread_counts=(1, 2, 4, 8),
            times_s=(8.0, 4.0, 2.0, 1.5),
        )
        out = scaling_chart({"EfficientIMM": curve}, title="t")
        assert "speedup" in out
        assert "o=EfficientIMM" in out
