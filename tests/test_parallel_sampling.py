"""Tests for process-parallel RRR generation."""

import numpy as np
import pytest

from repro.core.parallel_sampling import parallel_generate
from repro.core.selection import efficient_select
from repro.errors import ParameterError
from repro.runtime.backends import SerialBackend


class TestParallelGenerate:
    def test_count_and_universe(self, skitter_ic):
        store = parallel_generate(
            skitter_ic, "IC", 40, num_workers=2, seed=1,
            backend=SerialBackend(),
        )
        assert len(store) == 40
        assert store.vertices.max() < skitter_ic.num_vertices

    def test_multiprocess_matches_serial_backend(self, skitter_ic):
        serial = parallel_generate(
            skitter_ic, "IC", 30, num_workers=2, seed=3,
            backend=SerialBackend(),
        )
        procs = parallel_generate(skitter_ic, "IC", 30, num_workers=2, seed=3)
        assert len(serial) == len(procs)
        assert np.array_equal(serial.vertices, procs.vertices)
        assert np.array_equal(serial.offsets, procs.offsets)

    def test_deterministic_given_seed(self, skitter_ic):
        a = parallel_generate(
            skitter_ic, "IC", 20, num_workers=3, seed=5, backend=SerialBackend()
        )
        b = parallel_generate(
            skitter_ic, "IC", 20, num_workers=3, seed=5, backend=SerialBackend()
        )
        assert np.array_equal(a.vertices, b.vertices)

    def test_worker_streams_independent(self, skitter_ic):
        # Different workers must not replay the same RNG stream: with 2
        # workers the two halves of the store should differ.
        store = parallel_generate(
            skitter_ic, "IC", 20, num_workers=2, seed=7,
            backend=SerialBackend(),
        )
        half = len(store) // 2
        first = [store.get(i).tolist() for i in range(half)]
        second = [store.get(half + i).tolist() for i in range(half)]
        assert first != second

    def test_uneven_split(self, skitter_ic):
        store = parallel_generate(
            skitter_ic, "IC", 7, num_workers=3, seed=2, backend=SerialBackend()
        )
        assert len(store) == 7

    def test_zero_count(self, skitter_ic):
        store = parallel_generate(
            skitter_ic, "IC", 0, num_workers=2, seed=0, backend=SerialBackend()
        )
        assert len(store) == 0

    def test_lt_model(self, amazon_lt):
        store = parallel_generate(
            amazon_lt, "LT", 25, num_workers=2, seed=4, backend=SerialBackend()
        )
        assert len(store) == 25
        # LT sets are short paths.
        assert store.sizes().mean() < 50

    def test_feeds_selection(self, skitter_ic):
        store = parallel_generate(
            skitter_ic, "IC", 60, num_workers=2, seed=6, backend=SerialBackend()
        )
        res = efficient_select(store, 5)
        assert res.seeds.size == 5

    def test_rejects_bad_args(self, skitter_ic):
        with pytest.raises(ParameterError):
            parallel_generate(skitter_ic, "IC", -1, backend=SerialBackend())
        with pytest.raises(ParameterError):
            parallel_generate(
                skitter_ic, "IC", 5, num_workers=0, backend=SerialBackend()
            )
