"""Tests for the Tang et al. martingale math."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.martingale import (
    MartingaleSchedule,
    accepts_level,
    adjusted_ell,
    estimation_levels,
    final_theta,
    lambda_prime,
    lambda_star,
    level_theta,
    log_choose,
    lower_bound_from_level,
)
from repro.errors import ParameterError


class TestLogChoose:
    def test_small_exact(self):
        assert log_choose(5, 2) == pytest.approx(math.log(10))
        assert log_choose(10, 0) == pytest.approx(0.0)
        assert log_choose(10, 10) == pytest.approx(0.0)

    def test_symmetry(self):
        assert log_choose(30, 7) == pytest.approx(log_choose(30, 23))

    def test_large_stable(self):
        # C(1e6, 50) overflows floats; the log form must not.
        val = log_choose(10**6, 50)
        assert 500 < val < 700

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            log_choose(5, 6)
        with pytest.raises(ParameterError):
            log_choose(5, -1)

    @given(st.integers(2, 500), st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_pascal_recurrence(self, n, k):
        if k > n - 1:
            k = n - 1
        if k < 1:
            return
        # log C(n,k) = log( C(n-1,k-1) + C(n-1,k) )
        lhs = log_choose(n, k)
        a, b = log_choose(n - 1, k - 1), log_choose(n - 1, k)
        rhs = max(a, b) + math.log1p(math.exp(min(a, b) - max(a, b)))
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestAdjustedEll:
    def test_greater_than_ell(self):
        assert adjusted_ell(1.0, 1000) > 1.0

    def test_converges_for_large_n(self):
        assert adjusted_ell(1.0, 10**9) == pytest.approx(1.0, abs=0.04)

    def test_small_n_passthrough(self):
        assert adjusted_ell(1.0, 1) == 1.0


class TestLambdas:
    def test_lambda_prime_positive(self):
        assert lambda_prime(1000, 50, 1.0, 0.5) > 0

    def test_lambda_star_positive(self):
        assert lambda_star(1000, 50, 1.0, 0.5) > 0

    def test_decreasing_in_epsilon(self):
        hi = lambda_star(1000, 50, 1.0, 0.1)
        lo = lambda_star(1000, 50, 1.0, 0.9)
        assert hi > lo
        assert lambda_prime(1000, 50, 1.0, 0.1) > lambda_prime(1000, 50, 1.0, 0.9)

    def test_increasing_in_k(self):
        assert lambda_star(1000, 100, 1.0, 0.5) > lambda_star(1000, 10, 1.0, 0.5)

    def test_increasing_in_n(self):
        assert lambda_star(10000, 50, 1.0, 0.5) > lambda_star(1000, 50, 1.0, 0.5)

    def test_epsilon_quadratic_scaling(self):
        # lambda* ~ 1/eps^2.
        a = lambda_star(1000, 50, 1.0, 0.25)
        b = lambda_star(1000, 50, 1.0, 0.5)
        assert a / b == pytest.approx(4.0, rel=1e-9)

    @given(
        st.integers(60, 100_000),
        st.integers(1, 50),
        st.floats(0.05, 0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_both_lambdas_finite_positive(self, n, k, eps):
        assert 0 < lambda_prime(n, k, 1.0, eps) < float("inf")
        assert 0 < lambda_star(n, k, 1.0, eps) < float("inf")


class TestLevels:
    def test_estimation_levels(self):
        assert estimation_levels(1024) == 9
        assert estimation_levels(2) == 1

    def test_level_theta_monotone_in_level(self):
        # Halving x doubles theta_i.
        t1 = level_theta(4096, 10, 1.0, 0.5, 1)
        t2 = level_theta(4096, 10, 1.0, 0.5, 2)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_level_theta_rejects_level_zero(self):
        with pytest.raises(ParameterError):
            level_theta(100, 5, 1.0, 0.5, 0)

    def test_accepts_level_threshold(self):
        n, eps, level = 1024, 0.5, 2
        x = n / 4
        needed = (1 + math.sqrt(2) * eps) * x / n
        assert accepts_level(n, eps, level, needed + 0.01, 0)
        assert not accepts_level(n, eps, level, needed - 0.01, 0)

    def test_lower_bound_formula(self):
        lb = lower_bound_from_level(1000, 0.5, 0.4)
        assert lb == pytest.approx(400 / (1 + math.sqrt(2) * 0.5))

    def test_final_theta(self):
        theta = final_theta(1000, 50, 1.0, 0.5, lb=100.0)
        assert theta == math.ceil(lambda_star(1000, 50, 1.0, 0.5) / 100.0)

    def test_final_theta_rejects_nonpositive_lb(self):
        with pytest.raises(ParameterError):
            final_theta(1000, 50, 1.0, 0.5, 0.0)


class TestSchedule:
    def test_for_run_adjusts_ell(self):
        s = MartingaleSchedule.for_run(1000, 50, 0.5, 1.0)
        assert s.ell > 1.0

    def test_rejects_k_above_n(self):
        with pytest.raises(ParameterError):
            MartingaleSchedule.for_run(10, 11, 0.5, 1.0)

    def test_theta_final_larger_for_smaller_lb(self):
        s = MartingaleSchedule.for_run(1000, 50, 0.5, 1.0)
        assert s.theta_final(10.0) > s.theta_final(100.0)

    def test_better_coverage_means_fewer_samples(self):
        s = MartingaleSchedule.for_run(4096, 20, 0.5, 1.0)
        assert s.theta_final(s.lower_bound(0.8)) < s.theta_final(s.lower_bound(0.2))

    def test_max_level(self):
        s = MartingaleSchedule.for_run(1024, 5, 0.5, 1.0)
        assert s.max_level == 9
