"""Tests for SNAP edge-list and npz graph I/O."""

import gzip

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.io import (
    load_npz,
    read_snap_edgelist,
    save_npz,
    write_snap_edgelist,
)

from conftest import make_graph


class TestSnapReader:
    def test_basic_parse(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n0 1\n1 2\n\n2 0\n")
        g = read_snap_edgelist(p)
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_parse_with_probs(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 0.25\n1 2 0.75\n")
        g = read_snap_edgelist(p)
        assert sorted(g.probs.tolist()) == [0.25, 0.75]

    def test_tabs_and_spaces(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\t1\n1   2\n")
        assert read_snap_edgelist(p).num_edges == 2

    def test_gzip_suffix(self, tmp_path):
        p = tmp_path / "g.txt.gz"
        with gzip.open(p, "wt") as fh:
            fh.write("0 1\n1 0\n")
        assert read_snap_edgelist(p).num_edges == 2

    def test_relabel_sparse_ids(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("1000 2000\n")
        g = read_snap_edgelist(p, relabel=True)
        assert g.num_vertices == 2

    def test_no_relabel_keeps_ids(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("3 7\n")
        g = read_snap_edgelist(p, relabel=False)
        assert g.num_vertices == 8

    def test_make_undirected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        g = read_snap_edgelist(p, make_undirected=True)
        assert g.num_edges == 2

    def test_rejects_garbage_line(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\nnot numbers\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_snap_edgelist(p)

    def test_rejects_wrong_field_count(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="expected"):
            read_snap_edgelist(p)

    def test_rejects_bad_probability(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 xyz\n")
        with pytest.raises(GraphFormatError, match="bad probability"):
            read_snap_edgelist(p)

    def test_error_reports_line_number(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n0 1\nbroken\n")
        with pytest.raises(GraphFormatError, match=":3"):
            read_snap_edgelist(p)


class TestRoundTrips:
    def test_snap_roundtrip(self, tmp_path, diamond_graph):
        p = tmp_path / "g.txt"
        write_snap_edgelist(diamond_graph, p)
        back = read_snap_edgelist(p, relabel=False)
        assert back == diamond_graph

    def test_snap_roundtrip_gz(self, tmp_path, diamond_graph):
        p = tmp_path / "g.txt.gz"
        write_snap_edgelist(diamond_graph, p)
        assert read_snap_edgelist(p, relabel=False) == diamond_graph

    def test_snap_without_probs(self, tmp_path, line_graph):
        p = tmp_path / "g.txt"
        write_snap_edgelist(line_graph, p, write_probs=False)
        back = read_snap_edgelist(p, relabel=False, default_prob=1.0)
        assert back == line_graph

    def test_header_written_as_comments(self, tmp_path, line_graph):
        p = tmp_path / "g.txt"
        write_snap_edgelist(line_graph, p, header="hello\nworld")
        text = p.read_text()
        assert "# hello" in text and "# world" in text

    def test_npz_roundtrip(self, tmp_path, diamond_graph):
        p = tmp_path / "g.npz"
        save_npz(diamond_graph, p)
        assert load_npz(p) == diamond_graph

    def test_npz_roundtrip_empty(self, tmp_path, empty_graph):
        p = tmp_path / "g.npz"
        save_npz(empty_graph, p)
        assert load_npz(p).num_vertices == 0

    def test_npz_rejects_foreign_archive(self, tmp_path):
        p = tmp_path / "x.npz"
        np.savez(p, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_npz(p)

    def test_npz_isolated_vertices_survive(self, tmp_path):
        g = make_graph([(0, 1, 1.0)], n=50)
        p = tmp_path / "g.npz"
        save_npz(g, p)
        assert load_npz(p).num_vertices == 50


class TestMatrixMarket:
    def _write(self, tmp_path, text):
        p = tmp_path / "g.mtx"
        p.write_text(text)
        return p

    def test_basic_real_general(self, tmp_path):
        from repro.graph.io import read_matrix_market

        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "3 3 2\n"
            "1 2 0.5\n"
            "2 3 0.25\n",
        )
        g = read_matrix_market(p)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.edge_probs(0)[0] == 0.5

    def test_pattern_field(self, tmp_path):
        from repro.graph.io import read_matrix_market

        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "1 2\n",
        )
        g = read_matrix_market(p, default_prob=0.3)
        assert g.probs[0] == 0.3

    def test_symmetric_expands(self, tmp_path):
        from repro.graph.io import read_matrix_market

        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 1\n"
            "1 3 0.7\n",
        )
        g = read_matrix_market(p)
        assert g.num_edges == 2
        assert list(g.neighbors(2)) == [0]

    def test_one_based_ids(self, tmp_path):
        from repro.graph.io import read_matrix_market

        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "2 1 1.0\n",
        )
        g = read_matrix_market(p)
        assert list(g.neighbors(1)) == [0]

    def test_rejects_non_mm(self, tmp_path):
        from repro.errors import GraphFormatError
        from repro.graph.io import read_matrix_market

        p = self._write(tmp_path, "not matrix market\n1 1 1\n")
        with pytest.raises(GraphFormatError, match="not a MatrixMarket"):
            read_matrix_market(p)

    def test_rejects_rectangular(self, tmp_path):
        from repro.errors import GraphFormatError
        from repro.graph.io import read_matrix_market

        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n3 4 0\n",
        )
        with pytest.raises(GraphFormatError, match="square"):
            read_matrix_market(p)

    def test_rejects_unsupported_symmetry(self, tmp_path):
        from repro.errors import GraphFormatError
        from repro.graph.io import read_matrix_market

        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 0\n",
        )
        with pytest.raises(GraphFormatError, match="symmetry"):
            read_matrix_market(p)

    def test_roundtrip(self, tmp_path, diamond_graph):
        from repro.graph.io import read_matrix_market, write_matrix_market

        p = tmp_path / "g.mtx"
        write_matrix_market(diamond_graph, p)
        assert read_matrix_market(p) == diamond_graph

    def test_missing_size_line(self, tmp_path):
        from repro.errors import GraphFormatError
        from repro.graph.io import read_matrix_market

        p = self._write(
            tmp_path, "%%MatrixMarket matrix coordinate real general\n"
        )
        with pytest.raises(GraphFormatError, match="size line"):
            read_matrix_market(p)
