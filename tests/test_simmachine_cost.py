"""Tests for the cost model and the instrumented trace drivers."""

import numpy as np
import pytest

from repro.core.sampling import RRRSampler, SamplingConfig
from repro.diffusion.base import get_model
from repro.errors import ParameterError
from repro.simmachine.cost import (
    CostModel,
    KernelCost,
    RunProfile,
    profile_pair,
)
from repro.simmachine.instrumented import (
    bitmap_check_shares,
    trace_efficient_selection,
    trace_ripples_selection,
)
from repro.simmachine.topology import perlmutter, ripples_testbed


@pytest.fixture(scope="module")
def profiles(amazon_ic):
    return profile_pair(amazon_ic, "amazon", "IC", k=10, theta_cap=300, seed=0)


class TestKernelCost:
    def test_from_two_runs(self):
        kc = KernelCost.from_two_runs(100.0, 160.0)
        assert kc.replicated_ops == 60.0
        assert kc.partitioned_ops == 40.0

    def test_work_efficient_kernel_has_no_replication(self):
        kc = KernelCost.from_two_runs(100.0, 100.0)
        assert kc.replicated_ops == 0.0
        assert kc.partitioned_ops == 100.0


class TestProfilePair:
    def test_both_frameworks(self, profiles):
        assert set(profiles) == {"Ripples", "EfficientIMM"}

    def test_shared_sampling(self, profiles):
        a, b = profiles["Ripples"], profiles["EfficientIMM"]
        assert a.num_sets == b.num_sets
        assert a.total_entries == b.total_entries

    def test_ripples_replicates_work(self, profiles):
        assert (
            profiles["Ripples"].selection.replicated_ops
            > 10 * profiles["EfficientIMM"].selection.replicated_ops
        )

    def test_efficient_is_work_efficient(self, profiles):
        kc = profiles["EfficientIMM"].selection
        assert kc.replicated_ops < 0.05 * kc.partitioned_ops

    def test_gather_only_for_ripples(self, profiles):
        assert profiles["Ripples"].gather_bytes > 0
        assert profiles["EfficientIMM"].gather_bytes == 0

    def test_adaptive_store_smaller(self, profiles):
        assert (
            profiles["EfficientIMM"].store_bytes
            <= profiles["Ripples"].store_bytes
        )


class TestCostModel:
    def test_rejects_p_outside_machine(self, profiles):
        cm = CostModel(perlmutter())
        with pytest.raises(ParameterError):
            cm.sampling_time_s(profiles["Ripples"], 129)
        cm10 = CostModel(ripples_testbed())
        with pytest.raises(ParameterError):
            cm10.selection_time_s(profiles["Ripples"], 16)

    def test_sampling_time_decreases_with_threads(self, profiles):
        cm = CostModel(perlmutter())
        t1 = cm.sampling_time_s(profiles["EfficientIMM"], 1)
        t16 = cm.sampling_time_s(profiles["EfficientIMM"], 16)
        assert t16 < t1

    def test_efficient_selection_scales(self, profiles):
        cm = CostModel(perlmutter())
        prof = profiles["EfficientIMM"]
        assert cm.selection_time_s(prof, 32) < cm.selection_time_s(prof, 1)

    def test_ripples_selection_saturates(self, profiles):
        # The paper's headline: Ripples' selection stops improving and
        # eventually regresses as p grows.
        cm = CostModel(perlmutter())
        prof = profiles["Ripples"]
        t = {p: cm.selection_time_s(prof, p) for p in (1, 32, 128)}
        assert t[128] > 0.5 * t[32]  # no further scaling at high p

    def test_scaling_curve_structure(self, profiles):
        cm = CostModel(perlmutter())
        curve = cm.scaling_curve(profiles["EfficientIMM"])
        assert curve.thread_counts == (1, 2, 4, 8, 16, 32, 64, 128)
        assert len(curve.times_s) == 8
        assert curve.best_time == min(curve.times_s)

    def test_curve_clamped_to_machine(self, profiles):
        cm = CostModel(ripples_testbed())
        curve = cm.scaling_curve(profiles["Ripples"])
        assert max(curve.thread_counts) <= 10

    def test_efficient_beats_ripples_best(self, profiles):
        cm = CostModel(perlmutter())
        rip = cm.scaling_curve(profiles["Ripples"]).best_time
        eimm = cm.scaling_curve(profiles["EfficientIMM"]).best_time
        assert eimm < rip

    def test_efficient_saturates_later(self, profiles):
        cm = CostModel(perlmutter())
        rip = cm.scaling_curve(profiles["Ripples"]).saturation_threads()
        eimm = cm.scaling_curve(profiles["EfficientIMM"]).saturation_threads()
        assert eimm >= rip

    def test_stage_breakdown_sums(self, profiles):
        cm = CostModel(perlmutter())
        st = cm.total_time_s(profiles["Ripples"], 8)
        assert st["Total"] == pytest.approx(
            st["Generate_RRRsets"]
            + st["Find_Most_Influential_Set"]
            + st["Other"]
        )

    def test_speedup_vs(self, profiles):
        cm = CostModel(perlmutter())
        curve = cm.scaling_curve(profiles["EfficientIMM"])
        s = curve.speedup_vs(curve.times_s[0])
        assert s[0] == pytest.approx(1.0)
        assert s[-1] > 1.0


@pytest.fixture(scope="module")
def small_store(amazon_ic):
    sampler = RRRSampler(
        get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=2
    )
    sampler.extend(60)
    return sampler.store


class TestSelectionTraces:
    def test_seeds_agree_with_real_kernels(self, small_store):
        from repro.core.selection import efficient_select, ripples_select

        topo = perlmutter()
        k = 5
        te = trace_efficient_selection(small_store, k, 2, topo)
        tr = trace_ripples_selection(small_store, k, 2, topo)
        real = efficient_select(small_store, k).seeds[:k]
        assert np.array_equal(te.seeds, real)
        assert np.array_equal(tr.seeds, real)
        assert np.array_equal(ripples_select(small_store, k).seeds[:k], real)

    def test_ripples_misses_dominate(self, small_store):
        topo = perlmutter()
        te = trace_efficient_selection(small_store, 5, 2, topo)
        tr = trace_ripples_selection(small_store, 5, 2, topo)
        assert tr.total_misses > 10 * te.total_misses

    def test_per_thread_counts_present(self, small_store):
        topo = perlmutter()
        te = trace_efficient_selection(small_store, 3, 4, topo)
        assert len(te.per_thread) == 4
        assert te.total.l1_hits + te.total.l1_misses > 0

    def test_more_threads_more_ripples_traffic(self, small_store):
        topo = perlmutter()
        m2 = trace_ripples_selection(small_store, 3, 2, topo).total_misses
        m4 = trace_ripples_selection(small_store, 3, 4, topo).total_misses
        assert m4 > 1.5 * m2


class TestBitmapShares:
    def test_numa_aware_always_cheaper(self):
        topo = perlmutter()
        shares = bitmap_check_shares(8000.0, 2000.0, topo)
        assert shares["numa_aware"].share < shares["original"].share

    def test_shares_in_unit_interval(self):
        topo = perlmutter()
        shares = bitmap_check_shares(500.0, 100.0, topo)
        for arm in shares.values():
            assert 0.0 < arm.share < 1.0

    def test_uniform_memory_machine_smaller_gap(self):
        # On the single-node testbed the two placements differ only by the
        # cache-level constants, not by any remote/contended DRAM term.
        flat = ripples_testbed()
        numa = perlmutter()
        s_flat = bitmap_check_shares(8000.0, 2000.0, flat)
        s_numa = bitmap_check_shares(8000.0, 2000.0, numa)
        gap_flat = s_flat["original"].share - s_flat["numa_aware"].share
        gap_numa = s_numa["original"].share - s_numa["numa_aware"].share
        assert gap_numa > gap_flat
