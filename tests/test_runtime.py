"""Tests for the runtime substrate: partitioners, atomics, queues, backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendError, ParameterError
from repro.runtime.atomic import AtomicCounterArray
from repro.runtime.api import BackendConfig
from repro.runtime.backends import MultiprocessBackend, SerialBackend, make_backend
from repro.runtime.partition import (
    balanced_partition,
    block_partition,
    cyclic_partition,
)
from repro.runtime.workqueue import ChunkedWorkQueue, simulate_schedule


class TestBlockPartition:
    def test_even_split(self):
        assert block_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert block_partition(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_workers_than_items(self):
        bounds = block_partition(2, 5)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert block_partition(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_rejects_zero_workers(self):
        with pytest.raises(ParameterError):
            block_partition(5, 0)

    @given(st.integers(0, 500), st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_exact_cover(self, n, p):
        bounds = block_partition(n, p)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c and a <= b and c <= d
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1


class TestCyclicPartition:
    def test_round_robin(self):
        parts = cyclic_partition(7, 3)
        assert parts[0].tolist() == [0, 3, 6]
        assert parts[1].tolist() == [1, 4]
        assert parts[2].tolist() == [2, 5]

    @given(st.integers(0, 300), st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_exact_cover(self, n, p):
        parts = cyclic_partition(n, p)
        all_items = np.concatenate(parts) if parts else np.empty(0)
        assert sorted(all_items.tolist()) == list(range(n))


class TestBalancedPartition:
    def test_skewed_weights_balanced(self):
        w = np.array([100, 1, 1, 1, 1, 1, 1, 1])
        bounds = balanced_partition(w, 2)
        loads = [w[lo:hi].sum() for lo, hi in bounds]
        # One giant item alone, the rest together.
        assert loads[0] == 100

    def test_uniform_weights_like_block(self):
        w = np.ones(12)
        bounds = balanced_partition(w, 4)
        assert [hi - lo for lo, hi in bounds] == [3, 3, 3, 3]

    def test_zero_weights_fallback(self):
        assert balanced_partition(np.zeros(6), 2) == block_partition(6, 2)

    def test_rejects_negative_weights(self):
        with pytest.raises(ParameterError):
            balanced_partition(np.array([1.0, -1.0]), 2)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100),
        st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_contiguous_exact_cover(self, weights, p):
        w = np.asarray(weights)
        bounds = balanced_partition(w, p)
        assert len(bounds) == p
        assert bounds[0][0] == 0 and bounds[-1][1] == w.size
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c


class TestAtomicCounterArray:
    def test_add_with_duplicates(self):
        c = AtomicCounterArray(5)
        c.add(np.array([1, 1, 2]))
        assert c.values.tolist() == [0, 2, 1, 0, 0]

    def test_sub(self):
        c = AtomicCounterArray(3)
        c.add(np.array([0, 1]))
        c.sub(np.array([1]))
        assert c.values.tolist() == [1, 0, 0]

    def test_update_accounting(self):
        c = AtomicCounterArray(5)
        c.add(np.array([1, 2, 3]))
        c.add(np.array([1]))
        assert c.num_updates == 4
        assert c.num_batches == 2

    def test_merge(self):
        a, b = AtomicCounterArray(3), AtomicCounterArray(3)
        a.add(np.array([0]))
        b.add(np.array([0, 2]))
        a.merge_from(b)
        assert a.values.tolist() == [2, 0, 1]
        assert a.num_updates == 3

    def test_merge_size_mismatch(self):
        with pytest.raises(ParameterError):
            AtomicCounterArray(3).merge_from(AtomicCounterArray(4))

    def test_reset(self):
        c = AtomicCounterArray(3)
        c.add(np.array([1]))
        c.reset()
        assert not c.values.any()

    def test_argmax(self):
        c = AtomicCounterArray(4)
        c.add(np.array([2, 2, 1]))
        assert c.argmax() == 2

    def test_two_step_reduction_matches_argmax(self):
        rng = np.random.default_rng(0)
        c = AtomicCounterArray(100)
        c.add(rng.integers(0, 100, size=1000))
        bounds = block_partition(100, 7)
        regional = c.regional_argmax(bounds)
        assert c.global_from_regional(regional) == c.argmax()

    def test_regional_argmax_empty_ranges(self):
        c = AtomicCounterArray(3)
        c.add(np.array([1]))
        regional = c.regional_argmax(block_partition(3, 5))
        assert (regional == -1).sum() == 2

    def test_conflict_estimate_bounds(self):
        c = AtomicCounterArray(100)
        assert c.estimate_conflicts(np.arange(10), 1) == 0.0
        assert 0.0 < c.estimate_conflicts(np.arange(50), 8) <= 1.0

    def test_rejects_negative_size(self):
        with pytest.raises(ParameterError):
            AtomicCounterArray(-1)


class TestChunkedWorkQueue:
    def test_drains_everything_single_worker(self):
        q = ChunkedWorkQueue(10, num_workers=1, chunk_size=3)
        got = []
        while (c := q.pop(0)) is not None:
            got.append(c)
        assert got == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_own_queue_first(self):
        q = ChunkedWorkQueue(8, num_workers=2, chunk_size=2)
        first = q.pop(1)
        assert first == (4, 6)  # worker 1's own block starts at chunk 2

    def test_stealing_when_empty(self):
        q = ChunkedWorkQueue(8, num_workers=2, chunk_size=2)
        q.pop(0), q.pop(0)  # drain worker 0's two chunks
        stolen = q.pop(0)
        assert stolen is not None
        assert q.steals == 1

    def test_steal_takes_from_back(self):
        q = ChunkedWorkQueue(8, num_workers=2, chunk_size=2)
        q.pop(0), q.pop(0)
        assert q.pop(0) == (6, 8)  # back of worker 1's queue

    def test_exhaustion_returns_none(self):
        q = ChunkedWorkQueue(4, num_workers=2, chunk_size=2)
        for _ in range(2):
            q.pop(0)
        q.pop(1)
        assert q.pop(0) is None and q.pop(1) is None

    def test_remaining(self):
        q = ChunkedWorkQueue(10, num_workers=2, chunk_size=5)
        assert q.remaining() == 2
        q.pop(0)
        assert q.remaining() == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            ChunkedWorkQueue(10, num_workers=2, chunk_size=0)
        with pytest.raises(ParameterError):
            ChunkedWorkQueue(10, num_workers=0)

    @given(st.integers(0, 200), st.integers(1, 8), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_every_item_dispatched_once(self, n, p, chunk):
        q = ChunkedWorkQueue(n, num_workers=p, chunk_size=chunk)
        seen = []
        w = 0
        while (c := q.pop(w % p)) is not None:
            seen.extend(range(*c))
            w += 1
        assert sorted(seen) == list(range(n))


class TestSimulateSchedule:
    def test_static_blocks(self):
        r = simulate_schedule(np.ones(8), 4, policy="static")
        assert r.loads.tolist() == [2, 2, 2, 2]
        assert r.makespan == 2

    def test_dynamic_balances_skew(self):
        costs = np.array([100.0] + [1.0] * 99)
        static = simulate_schedule(costs, 4, policy="static", chunk_size=1)
        dynamic = simulate_schedule(costs, 4, policy="dynamic", chunk_size=1)
        assert dynamic.makespan <= static.makespan

    def test_dynamic_imbalance_near_one_uniform(self):
        r = simulate_schedule(np.ones(1000), 8, policy="dynamic", chunk_size=4)
        assert r.imbalance < 1.05

    def test_cyclic(self):
        r = simulate_schedule(np.arange(6, dtype=float), 2, policy="cyclic")
        assert r.loads.tolist() == [0 + 2 + 4, 1 + 3 + 5]

    def test_unknown_policy(self):
        with pytest.raises(ParameterError):
            simulate_schedule(np.ones(4), 2, policy="magic")

    def test_empty_costs(self):
        r = simulate_schedule(np.empty(0), 3)
        assert r.makespan == 0.0

    @given(
        st.lists(st.floats(0.0, 50.0), min_size=1, max_size=120),
        st.integers(1, 8),
        st.sampled_from(["static", "dynamic", "cyclic"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation(self, costs, p, policy):
        c = np.asarray(costs)
        r = simulate_schedule(c, p, policy=policy, chunk_size=3)
        assert r.loads.sum() == pytest.approx(c.sum())
        assert r.makespan == pytest.approx(r.loads.max())
        assert np.all((r.assignment >= 0) & (r.assignment < p))


def _square(x):
    return x * x


class TestBackends:
    def test_serial(self):
        b = SerialBackend()
        assert b.run_tasks(_square, [1, 2, 3]) == [1, 4, 9]

    def test_multiprocess_results_ordered(self):
        with MultiprocessBackend(2) as b:
            assert b.run_tasks(_square, list(range(10))) == [
                x * x for x in range(10)
            ]

    def test_multiprocess_closed_rejects(self):
        b = MultiprocessBackend(1)
        b.close()
        with pytest.raises(BackendError):
            b.run_tasks(_square, [1])

    def test_close_idempotent(self):
        b = MultiprocessBackend(1)
        b.close()
        b.close()

    def test_factory(self):
        assert isinstance(make_backend(BackendConfig(backend="serial")), SerialBackend)
        with pytest.raises(BackendError):
            BackendConfig(backend="gpu")

    def test_rejects_zero_workers(self):
        with pytest.raises(BackendError):
            MultiprocessBackend(0)
