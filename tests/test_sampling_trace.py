"""Tests for the exact Generate_RRRsets memory trace."""

import numpy as np
import pytest

from repro.graph.datasets import load_dataset
from repro.simmachine.instrumented import SamplingTraceResult, trace_sampling
from repro.simmachine.topology import perlmutter


@pytest.fixture(scope="module")
def google_ic():
    return load_dataset("google", model="IC", seed=0)


class TestTraceSampling:
    def test_basic_counts(self, google_ic):
        res = trace_sampling(google_ic, 6, 2, perlmutter(), seed=1)
        assert res.num_sets == 6
        assert len(res.per_thread) == 2
        total = res.total
        assert total.l1_hits + total.l1_misses > 0

    def test_numa_local_placement_wins(self, google_ic):
        # Table II's direction from exact traces: binding everything to
        # node 0 costs more DRAM time than worker-local placement.
        res = trace_sampling(google_ic, 6, 4, perlmutter(), seed=2)
        assert res.numa_benefit > 1.0
        assert res.dram_ns_bind > res.dram_ns_local

    def test_fused_adds_counter_traffic(self, google_ic):
        unfused = trace_sampling(
            google_ic, 5, 2, perlmutter(), fused=False, seed=3
        )
        fused = trace_sampling(
            google_ic, 5, 2, perlmutter(), fused=True, seed=3
        )
        tot_u = unfused.total
        tot_f = fused.total
        assert (tot_f.l1_hits + tot_f.l1_misses) > (
            tot_u.l1_hits + tot_u.l1_misses
        )

    def test_deterministic(self, google_ic):
        a = trace_sampling(google_ic, 4, 2, perlmutter(), seed=5)
        b = trace_sampling(google_ic, 4, 2, perlmutter(), seed=5)
        assert a.total.total_misses == b.total.total_misses
        assert a.dram_ns_local == b.dram_ns_local

    def test_threads_partition_sets(self, google_ic):
        res = trace_sampling(google_ic, 8, 4, perlmutter(), seed=6)
        # Every thread's cache saw some traffic (2 sets each).
        for c in res.per_thread:
            assert c.l1_hits + c.l1_misses > 0


class TestLTTrace:
    def test_lt_trace_runs(self):
        from repro.graph.datasets import load_dataset

        g = load_dataset("amazon", model="LT", seed=0)
        res = trace_sampling(g, 30, 2, perlmutter(), model="LT", seed=1)
        assert res.num_sets == 30
        assert res.total.l1_hits + res.total.l1_misses > 0

    def test_lt_traffic_far_below_ic(self):
        from repro.graph.datasets import load_dataset

        g_lt = load_dataset("amazon", model="LT", seed=0)
        g_ic = load_dataset("amazon", model="IC", seed=0)
        topo = perlmutter()
        lt = trace_sampling(g_lt, 10, 2, topo, model="LT", seed=2)
        ic = trace_sampling(g_ic, 10, 2, topo, model="IC", seed=2)
        lt_total = lt.total.l1_hits + lt.total.l1_misses
        ic_total = ic.total.l1_hits + ic.total.l1_misses
        # LT sets are tiny paths; per-set traffic is orders below IC's.
        assert lt_total < 0.05 * ic_total
