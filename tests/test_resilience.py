"""Tests for repro.resilience: fault injection, retry policies, checkpoint/
resume determinism, failure-aware work queues, comm retry accounting, and
graceful degradation in the query engine (docs/resilience.md)."""

import os
import time

import numpy as np
import pytest

from repro import telemetry
from repro.core import EfficientIMM, IMMParams
from repro.core.sampling import RRRSampler, SamplingConfig
from repro.diffusion.base import get_model
from repro.distributed import SimulatedComm, perlmutter_cluster
from repro.errors import (
    ArtifactError,
    BackendError,
    FaultInjectedError,
    ParameterError,
    ReproError,
    RetryExhaustedError,
)
from repro.graph.datasets import load_dataset
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SamplingCheckpointer,
    call_with_retry,
    run_key,
)
from repro.runtime.api import BackendConfig, ExecutionContext
from repro.runtime.backends import MultiprocessBackend, SerialBackend
from repro.runtime.workqueue import ChunkedWorkQueue
from repro.service import EngineConfig, IMQuery, QueryEngine


def _square(x):
    return x * x


# ----------------------------------------------------------------- FaultSpec
class TestFaultSpec:
    def test_parse_full_form(self):
        s = FaultSpec.parse("slow@rank:0:0.05")
        assert (s.kind, s.scope, s.index, s.delay_s) == ("slow", "rank", 0, 0.05)

    def test_parse_scope_defaults_to_task(self):
        s = FaultSpec.parse("crash@1")
        assert s.scope == "task" and s.index == 1 and s.times == 1

    def test_parse_repeat_count(self):
        s = FaultSpec.parse("crash@batch:1x2")
        assert s.scope == "batch" and s.index == 1 and s.times == 2

    def test_describe_roundtrip(self):
        for text in ("crash@task:3", "corrupt@collective:2", "crash@batch:1x2"):
            assert FaultSpec.parse(text).describe() == text

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",  # no @
            "crash@",  # no index
            "boom@task:1",  # unknown kind
            "crash@task:x",  # non-numeric index
            "crash@task:1xq",  # bad repeat count
            "crash@task:1:abc",  # bad delay
            "crash@task:1:0.1:junk",  # trailing fields
            "crash@task:-1",  # negative index
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ParameterError):
            FaultSpec.parse(bad)

    def test_validation(self):
        with pytest.raises(ParameterError):
            FaultSpec(kind="crash", index=0, times=0)
        with pytest.raises(ParameterError):
            FaultSpec(kind="slow", index=0, delay_s=-1.0)


# ----------------------------------------------------------------- FaultPlan
class TestFaultPlan:
    def test_parse_multiple_specs(self):
        plan = FaultPlan.parse("crash@task:3, slow@rank:0:0.01")
        assert [s.describe() for s in plan.specs] == [
            "crash@task:3",
            "slow@rank:0",
        ]

    def test_parse_empty_rejected(self):
        with pytest.raises(ParameterError):
            FaultPlan.parse("  ,  ")

    def test_take_respects_budget(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=1, times=2)])
        assert plan.take("task", 1) is not None
        assert plan.take("task", 1) is not None
        assert plan.take("task", 1) is None  # budget spent
        assert plan.injected == 2 and plan.exhausted()

    def test_take_only_matching_scope_and_index(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=1, scope="batch")])
        assert plan.take("task", 1) is None
        assert plan.take("batch", 2) is None
        assert plan.take("batch", 1) is not None

    def test_invoke_crash(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=0)])
        with pytest.raises(FaultInjectedError, match="crash@task:0"):
            plan.invoke("task", 0, lambda: 42)
        assert plan.invoke("task", 0, lambda: 42) == 42  # budget spent

    def test_invoke_slow_still_returns(self):
        plan = FaultPlan([FaultSpec(kind="slow", index=0, delay_s=0.0)])
        assert plan.invoke("task", 0, lambda: 7) == 7
        assert plan.injected == 1

    def test_invoke_corrupt_mangles_result(self):
        plan = FaultPlan([FaultSpec(kind="corrupt", index=0)])
        assert plan.invoke("task", 0, lambda: 10) == 11

    def test_corrupt_is_deterministic_in_seed(self):
        a = np.arange(100.0)
        out1 = FaultPlan(seed=7).corrupt(a.copy())
        out2 = FaultPlan(seed=7).corrupt(a.copy())
        assert np.array_equal(out1, out2)
        assert (out1 != a).sum() == 1  # exactly one element perturbed

    def test_corrupt_payload_shapes(self):
        plan = FaultPlan(seed=0)
        assert plan.corrupt(b"abc") != b"abc"
        assert plan.corrupt(True) is False
        assert plan.corrupt(1.5) == 2.5
        assert plan.corrupt((1, 2)) == (2, 3)
        assert plan.corrupt("text") == "text"  # uncorruptible passes through
        assert plan.corrupt(None) is None

    def test_to_dict_accounting(self):
        plan = FaultPlan.parse("crash@task:0x2", seed=3)
        plan.take("task", 0)
        d = plan.to_dict()
        assert d["seed"] == 3
        assert d["specs"] == ["crash@task:0x2"]
        assert d["remaining"] == [1] and d["injected"] == 1
        assert d["by_kind"] == {"crash": 1}

    def test_telemetry_counters(self):
        with telemetry.session() as tel:
            plan = FaultPlan([FaultSpec(kind="crash", index=0)])
            plan.take("task", 0)
        snap = tel.snapshot()["counters"]
        assert snap["resilience.faults_injected"] == 1.0
        assert snap["resilience.faults.crash"] == 1.0


# --------------------------------------------------------------- RetryPolicy
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay_s=-0.1)

    def test_classification(self):
        p = RetryPolicy()
        assert p.is_retryable(FaultInjectedError("x"))
        assert p.is_retryable(BackendError("x"))
        assert p.is_retryable(OSError("x"))
        assert not p.is_retryable(ParameterError("x"))
        assert not p.is_retryable(ValueError("x"))

    def test_non_retryable_wins_on_overlap(self):
        # ParameterError is a ReproError; even with the whole hierarchy
        # marked retryable, the non-retryable list takes precedence.
        p = RetryPolicy(retryable=(ReproError,))
        assert p.is_retryable(BackendError("x"))
        assert not p.is_retryable(ParameterError("x"))

    def test_delay_exponential_and_clamped(self):
        p = RetryPolicy(base_delay_s=0.1, max_delay_s=0.25)
        assert p.delay_for(1) == pytest.approx(0.1)
        assert p.delay_for(2) == pytest.approx(0.2)
        assert p.delay_for(3) == pytest.approx(0.25)  # clamped

    def test_jitter_bounded_and_deterministic(self):
        p = RetryPolicy(base_delay_s=0.0, jitter_s=0.05, seed=1)
        d1, d2 = p.delay_for(1), p.delay_for(1)
        assert d1 == d2  # deterministic in (seed, attempt)
        assert 0.0 <= d1 <= 0.05
        assert p.delay_for(2) != d1  # attempt feeds the draw

    def test_call_recovers_from_transient(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FaultInjectedError("transient")
            return "ok"

        assert RetryPolicy(max_attempts=3).call(flaky) == "ok"
        assert len(calls) == 3

    def test_call_exhaustion_wraps(self):
        def always():
            raise FaultInjectedError("down")

        with pytest.raises(RetryExhaustedError) as ei:
            RetryPolicy(max_attempts=2).call(always, label="unit op")
        assert ei.value.attempts == 2
        assert ei.value.exit_code == 8
        assert "unit op" in str(ei.value)
        assert isinstance(ei.value.__cause__, FaultInjectedError)

    def test_call_non_retryable_raises_unwrapped(self):
        calls = []

        def bad():
            calls.append(1)
            raise ParameterError("user error")

        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=5).call(bad)
        assert len(calls) == 1  # never retried

    def test_on_retry_callback(self):
        seen = []

        def flaky():
            if not seen:
                raise BackendError("once")
            return 1

        RetryPolicy(max_attempts=2).call(
            flaky, on_retry=lambda a, e: seen.append((a, type(e).__name__))
        )
        assert seen == [(1, "BackendError")]

    def test_call_with_retry_none_policy(self):
        assert call_with_retry(lambda: 5, None) == 5
        with pytest.raises(FaultInjectedError):
            call_with_retry(lambda: (_ for _ in ()).throw(
                FaultInjectedError("x")), None)

    def test_retry_counter(self):
        with telemetry.session() as tel:
            calls = []

            def flaky():
                calls.append(1)
                if len(calls) < 2:
                    raise BackendError("once")
                return 1

            RetryPolicy(max_attempts=3).call(flaky)
        assert tel.snapshot()["counters"]["resilience.retries"] == 1.0


# ------------------------------------------------------- backend resilience
class TestSerialBackendResilience:
    def _backend(self, plan=None, retry=None):
        b = SerialBackend()
        b.fault_plan = plan
        b.retry_policy = retry
        return b

    def test_fault_without_retry_raises(self):
        b = self._backend(plan=FaultPlan([FaultSpec(kind="crash", index=1)]))
        with pytest.raises(FaultInjectedError):
            b.run_tasks(_square, [1, 2, 3])

    def test_retry_recovers_transient_fault(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=1)])
        b = self._backend(plan=plan, retry=RetryPolicy(max_attempts=2))
        assert b.run_tasks(_square, [1, 2, 3]) == [1, 4, 9]
        assert plan.injected == 1

    def test_retry_exhaustion(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=0, times=5)])
        b = self._backend(plan=plan, retry=RetryPolicy(max_attempts=2))
        with pytest.raises(RetryExhaustedError) as ei:
            b.run_tasks(_square, [1])
        assert ei.value.attempts == 2

    def test_corrupt_fault_mangles_result(self):
        b = self._backend(plan=FaultPlan([FaultSpec(kind="corrupt", index=0)]))
        assert b.run_tasks(_square, [2, 3]) == [5, 9]  # 4 corrupted to 5

    def test_failure_counted_with_telemetry(self):
        with telemetry.session() as tel:
            plan = FaultPlan([FaultSpec(kind="crash", index=0)])
            b = self._backend(plan=plan, retry=RetryPolicy(max_attempts=2))
            assert b.run_tasks(_square, [3]) == [9]
        snap = tel.snapshot()["counters"]
        assert snap["resilience.faults_injected"] == 1.0
        assert snap["resilience.retries"] == 1.0


class TestMultiprocessBackendResilience:
    def test_retry_recovers_transient_fault(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=2)])
        with MultiprocessBackend(2) as b:
            b.fault_plan = plan
            b.retry_policy = RetryPolicy(max_attempts=2)
            assert b.run_tasks(_square, list(range(6))) == [
                x * x for x in range(6)
            ]
        assert plan.injected == 1

    def test_faulted_run_matches_clean_run(self):
        with MultiprocessBackend(2) as b:
            clean = b.run_tasks(_square, list(range(8)))
        plan = FaultPlan.parse("crash@task:1,crash@task:5")
        with MultiprocessBackend(2) as b:
            b.fault_plan = plan
            b.retry_policy = RetryPolicy(max_attempts=3)
            assert b.run_tasks(_square, list(range(8))) == clean
        assert plan.injected == 2

    def test_retry_exhaustion(self):
        with MultiprocessBackend(2) as b:
            b.fault_plan = FaultPlan([FaultSpec(kind="crash", index=0, times=9)])
            b.retry_policy = RetryPolicy(max_attempts=2)
            with pytest.raises(RetryExhaustedError) as ei:
                b.run_tasks(_square, [1, 2])
        assert ei.value.exit_code == 8

    def test_fault_without_retry_raises(self):
        with MultiprocessBackend(2) as b:
            b.fault_plan = FaultPlan([FaultSpec(kind="crash", index=0)])
            with pytest.raises(FaultInjectedError):
                b.run_tasks(_square, [1, 2])

    def test_worker_exception_not_retryable_by_default(self):
        with MultiprocessBackend(2) as b:
            b.retry_policy = RetryPolicy(max_attempts=3)
            with pytest.raises(ValueError):
                b.run_tasks(_raise_value_error, [1])

    def test_corrupt_on_returned_result(self):
        with MultiprocessBackend(2) as b:
            b.fault_plan = FaultPlan([FaultSpec(kind="corrupt", index=1)])
            out = b.run_tasks(_square, [2, 3])
        assert out == [4, 10]  # 9 corrupted to 10

    def test_telemetry_merge_still_works_resilient(self):
        with telemetry.session() as tel:
            with MultiprocessBackend(2) as b:
                b.retry_policy = RetryPolicy(max_attempts=2)
                b.fault_plan = FaultPlan([FaultSpec(kind="crash", index=0)])
                assert b.run_tasks(_square, list(range(4))) == [0, 1, 4, 9]
        snap = tel.snapshot()["counters"]
        assert snap["runtime.tasks"] == 4.0
        assert snap["runtime.task_failures"] == 1.0


def _raise_value_error(x):
    raise ValueError(f"task {x} failed")


# ------------------------------------------- initializer failure regression
_INIT_SLOT = {}


def _good_init(value):
    _INIT_SLOT["v"] = value


def _read_slot(_):
    return _INIT_SLOT.get("v")


def _bad_init():
    raise RuntimeError("init boom")


class TestInitializerFailure:
    def test_raising_initializer_closes_pool(self):
        """Regression: a raising per-process initializer used to leave the
        pool crash-looping forked workers and the first map() hung forever.
        Now spin-up detects it, tears the pool down, and raises."""
        t0 = time.monotonic()
        with pytest.raises(BackendError, match="initializer"):
            MultiprocessBackend(2, initializer=_bad_init)
        assert time.monotonic() - t0 < 30.0  # fails fast, no hang

    def test_close_idempotent_after_init_failure(self):
        try:
            MultiprocessBackend(2, initializer=_bad_init)
        except BackendError:
            pass
        # No instance escaped, but a half-built one must also stay safe:
        b = MultiprocessBackend.__new__(MultiprocessBackend)
        b.close()
        b.close()

    def test_good_initializer_runs_in_every_worker(self):
        with MultiprocessBackend(2, initializer=_good_init, initargs=(42,)) as b:
            assert b.run_tasks(_read_slot, [0, 1, 2]) == [42, 42, 42]

    def test_initializer_via_config(self):
        cfg = BackendConfig(
            backend="multiprocess", num_workers=2,
            initializer=_good_init, initargs=(7,),
        )
        with ExecutionContext(cfg) as ctx:
            assert ctx.run_tasks(_read_slot, [0]) == [7]


# ------------------------------------------------------ workqueue resilience
class TestWorkQueueResilience:
    def test_failed_worker_cannot_pop(self):
        q = ChunkedWorkQueue(8, num_workers=2, chunk_size=2)
        leftover = q.fail_worker(0)
        assert leftover == 2
        assert q.failed_workers == frozenset({0})
        with pytest.raises(BackendError, match="worker 0 has failed"):
            q.pop(0)

    def test_survivors_steal_failed_workers_chunks(self):
        q = ChunkedWorkQueue(12, num_workers=3, chunk_size=2)
        q.fail_worker(0)
        covered = []
        for w in (1, 2, 1, 2, 1, 2, 1):
            c = q.pop(w)
            if c is not None:
                covered.extend(range(*c))
        # Every item — including worker 0's orphaned chunks — is dispatched
        # exactly once to the survivors.
        assert sorted(covered) == list(range(12))
        assert q.remaining() == 0

    def test_requeue_returns_inflight_chunk(self):
        q = ChunkedWorkQueue(4, num_workers=2, chunk_size=2)
        chunk = q.pop(0)
        q.fail_worker(0)
        q.requeue(chunk)  # worker 0 died holding it
        covered = []
        while (c := q.pop(1)) is not None:
            covered.extend(range(*c))
        assert sorted(covered) == list(range(4))

    def test_requeue_with_all_failed_rejected(self):
        q = ChunkedWorkQueue(4, num_workers=2, chunk_size=2)
        q.fail_worker(0)
        q.fail_worker(1)
        with pytest.raises(BackendError, match="all workers"):
            q.requeue((0, 2))

    def test_fail_worker_validates_index(self):
        q = ChunkedWorkQueue(4, num_workers=2)
        with pytest.raises(ParameterError):
            q.fail_worker(5)

    def test_rank_crash_fault_fires_once(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=1, scope="rank")])
        q = ChunkedWorkQueue(8, num_workers=2, chunk_size=2,
                             fault_plan=plan)
        with pytest.raises(FaultInjectedError, match="crash@rank:1"):
            q.pop(1)
        assert q.pop(1) is not None  # budget spent; rank lives on
        assert plan.injected == 1

    def test_rank_slow_and_corrupt_faults_nonfatal(self):
        plan = FaultPlan.parse("slow@rank:0:0.0,corrupt@rank:0")
        q = ChunkedWorkQueue(8, num_workers=2, chunk_size=2,
                             fault_plan=plan)
        assert q.pop(0) is not None  # slow: sleeps, then pops
        assert q.pop(0) is not None  # corrupt: ignored at rank scope
        assert plan.injected == 2


# ------------------------------------------------------------ comm resilience
class TestCommResilience:
    def _bufs(self, comm):
        return [np.full(4, r + 1, dtype=np.int64) for r in range(comm.size)]

    def test_collective_crash_without_retry(self):
        comm = SimulatedComm(
            perlmutter_cluster(2),
            fault_plan=FaultPlan([FaultSpec(kind="crash", index=0,
                                            scope="collective")]),
        )
        with pytest.raises(FaultInjectedError):
            comm.Allreduce_sum(self._bufs(comm))
        assert comm.stats.faults_injected == 1

    def test_retry_recovers_and_accounts(self):
        plan = FaultPlan([FaultSpec(kind="crash", index=1, scope="collective")])
        comm = SimulatedComm(
            perlmutter_cluster(2),
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2),
        )
        out0 = comm.Allreduce_sum(self._bufs(comm))  # seq 0: clean
        out1 = comm.Allreduce_sum(self._bufs(comm))  # seq 1: crash + retry
        assert np.array_equal(out0, out1)  # retried result is exact
        assert comm.stats.retries == 1
        assert comm.stats.faults_injected == 1
        assert comm.stats.num_collectives == 2

    def test_all_collectives_share_the_sequence(self):
        # One spec per sequence number, in the order the calls land.
        plan = FaultPlan.parse(
            "crash@collective:0,crash@collective:1,crash@collective:2,"
            "crash@collective:3,crash@collective:4"
        )
        comm = SimulatedComm(
            perlmutter_cluster(2), fault_plan=plan,
            retry=RetryPolicy(max_attempts=2),
        )
        comm.Allreduce_sum(self._bufs(comm))
        comm.Allreduce_max(self._bufs(comm))
        comm.Bcast(np.arange(3))
        comm.Gather(self._bufs(comm))
        comm.Barrier()
        assert comm.stats.retries == 5  # every collective was hit once
        assert plan.exhausted()

    def test_corrupt_collective_changes_result(self):
        plan = FaultPlan([FaultSpec(kind="corrupt", index=0,
                                    scope="collective")], seed=0)
        clean = SimulatedComm(perlmutter_cluster(2))
        bad = SimulatedComm(perlmutter_cluster(2), fault_plan=plan)
        a = clean.Allreduce_sum(self._bufs(clean))
        b = bad.Allreduce_sum(self._bufs(bad))
        assert (a != b).sum() == 1

    def test_exhaustion_propagates(self):
        comm = SimulatedComm(
            perlmutter_cluster(2),
            fault_plan=FaultPlan([FaultSpec(kind="crash", index=0,
                                            scope="collective", times=9)]),
            retry=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(RetryExhaustedError, match="collective allreduce#0"):
            comm.Allreduce_sum(self._bufs(comm))

    def test_comm_telemetry_counters(self):
        with telemetry.session() as tel:
            plan = FaultPlan([FaultSpec(kind="crash", index=0,
                                        scope="collective")])
            comm = SimulatedComm(perlmutter_cluster(2), fault_plan=plan,
                                 retry=RetryPolicy(max_attempts=2))
            comm.Barrier()
        snap = tel.snapshot()["counters"]
        assert snap["comm.retries"] == 1.0
        assert snap["resilience.faults_injected"] == 1.0


# -------------------------------------------------------- checkpoint/resume
@pytest.fixture(scope="module")
def amazon_graph():
    return load_dataset("amazon", model="IC", seed=0)


def _make_sampler(graph, seed=0):
    return RRRSampler(
        get_model("IC", graph),
        SamplingConfig.efficientimm(num_threads=1),
        seed=seed,
    )


class TestSamplingCheckpointer:
    def test_save_restore_roundtrip(self, amazon_graph, tmp_path):
        sampler = _make_sampler(amazon_graph)
        sampler.extend(50)
        ck = SamplingCheckpointer(tmp_path, "roundtrip")
        path = ck.save(sampler, 0)
        assert path is not None and path.exists()

        fresh = _make_sampler(amazon_graph)
        assert ck.restore(fresh) == 0
        assert len(fresh.store) == 50
        # Continuing both samplers must produce identical futures: the RNG
        # state travelled with the checkpoint.
        sampler.extend(80)
        fresh.extend(80)
        assert np.array_equal(
            sampler.store.vertex_counts(), fresh.store.vertex_counts()
        )

    def test_restore_missing_returns_none(self, amazon_graph, tmp_path):
        ck = SamplingCheckpointer(tmp_path, "nothing-here")
        assert not ck.has_checkpoint()
        assert ck.restore(_make_sampler(amazon_graph)) is None

    def test_restore_wrong_key_rejected(self, amazon_graph, tmp_path):
        sampler = _make_sampler(amazon_graph)
        sampler.extend(10)
        ck = SamplingCheckpointer(tmp_path, "key-a")
        ck.save(sampler, 0)
        # Simulate a mislabeled checkpoint: same bytes, different key slot.
        os.rename(ck.path(), tmp_path / "checkpoint-key-b.npz")
        with pytest.raises(ArtifactError):
            SamplingCheckpointer(tmp_path, "key-b").restore(
                _make_sampler(amazon_graph)
            )

    def test_cadence(self, amazon_graph, tmp_path):
        sampler = _make_sampler(amazon_graph)
        sampler.extend(10)
        ck = SamplingCheckpointer(tmp_path, "cadence", every=2)
        assert ck.save(sampler, 0) is not None
        assert ck.save(sampler, 1) is None  # thinned
        assert ck.save(sampler, 2) is not None
        assert ck.saves == 2

    def test_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ArtifactError):
            SamplingCheckpointer(tmp_path, "x", every=0)

    def test_clear(self, amazon_graph, tmp_path):
        sampler = _make_sampler(amazon_graph)
        sampler.extend(5)
        ck = SamplingCheckpointer(tmp_path, "clearable")
        ck.save(sampler, 0)
        ck.clear()
        assert not ck.has_checkpoint()
        ck.clear()  # idempotent

    def test_run_key_sensitivity(self, amazon_graph):
        base = IMMParams(k=3, theta_cap=800, seed=0)
        key = run_key(amazon_graph, base, framework="EfficientIMM")
        assert key == run_key(amazon_graph, base, framework="EfficientIMM")
        assert key != run_key(
            amazon_graph, IMMParams(k=4, theta_cap=800, seed=0),
            framework="EfficientIMM",
        )
        assert key != run_key(
            amazon_graph, IMMParams(k=3, theta_cap=800, seed=1),
            framework="EfficientIMM",
        )
        assert key != run_key(amazon_graph, base, framework="Ripples")


class TestInterruptedRunResumes:
    """The acceptance criterion: a run crashed at ANY sampling batch and
    resumed with ``resume=True`` selects byte-identical seeds."""

    PARAMS = IMMParams(k=3, theta_cap=800, seed=0)

    @pytest.fixture(scope="class")
    def clean(self, amazon_graph, tmp_path_factory):
        root = tmp_path_factory.mktemp("ckpt-probe")
        ck = SamplingCheckpointer(
            root, run_key(amazon_graph, self.PARAMS, framework="EfficientIMM")
        )
        result = EfficientIMM(amazon_graph).run(self.PARAMS, checkpointer=ck)
        return result, ck.saves  # saves == number of sampling batches

    def test_run_has_multiple_batches(self, clean):
        _, num_batches = clean
        assert num_batches >= 2  # otherwise the boundary sweep is vacuous

    def test_crash_then_resume_at_every_batch(
        self, amazon_graph, clean, tmp_path
    ):
        clean_result, num_batches = clean
        for batch in range(num_batches):
            root = tmp_path / f"crash-at-{batch}"
            ck = SamplingCheckpointer(
                root,
                run_key(amazon_graph, self.PARAMS, framework="EfficientIMM"),
            )
            plan = FaultPlan([FaultSpec(kind="crash", index=batch,
                                        scope="batch")])
            with pytest.raises(FaultInjectedError):
                EfficientIMM(amazon_graph).run(
                    self.PARAMS, checkpointer=ck, fault_plan=plan
                )
            resumed = EfficientIMM(amazon_graph).run(
                self.PARAMS, checkpointer=ck, resume=True
            )
            assert np.array_equal(resumed.seeds, clean_result.seeds), (
                f"crash at batch {batch}: resumed seeds diverged"
            )
            assert resumed.num_rrrsets == clean_result.num_rrrsets

    def test_resume_without_checkpoint_is_a_fresh_run(
        self, amazon_graph, clean, tmp_path
    ):
        clean_result, _ = clean
        ck = SamplingCheckpointer(
            tmp_path, run_key(amazon_graph, self.PARAMS,
                              framework="EfficientIMM")
        )
        result = EfficientIMM(amazon_graph).run(
            self.PARAMS, checkpointer=ck, resume=True
        )
        assert np.array_equal(result.seeds, clean_result.seeds)

    def test_checkpoint_telemetry(self, amazon_graph, tmp_path):
        with telemetry.session() as tel:
            ck = SamplingCheckpointer(
                tmp_path,
                run_key(amazon_graph, self.PARAMS, framework="EfficientIMM"),
            )
            EfficientIMM(amazon_graph).run(self.PARAMS, checkpointer=ck)
        snap = tel.snapshot()["counters"]
        assert snap["resilience.checkpoints_written"] == float(ck.saves)


# ------------------------------------------------------ degraded query serving
ALWAYS_CRASH = "crash@task:0x99"


def _failing_context():
    return ExecutionContext(
        BackendConfig(
            backend="serial",
            faults=FaultPlan.parse(ALWAYS_CRASH),
            telemetry_label="service",
        )
    )


class TestDegradedServing:
    def _seed_artifact(self, artifact_dir):
        """A healthy engine materialises one sketch artifact on disk."""
        cfg = EngineConfig(artifact_dir=artifact_dir, default_theta=300)
        with QueryEngine(config=cfg) as eng:
            resp = eng.query(IMQuery(dataset="amazon", k=3, theta_cap=300))
        assert resp.ok and not resp.degraded
        return cfg

    def test_stale_artifact_serves_degraded(self, tmp_path):
        self._seed_artifact(tmp_path)
        cfg = EngineConfig(artifact_dir=tmp_path, default_theta=300)
        with QueryEngine(config=cfg, context=_failing_context()) as eng:
            # Different theta -> different fingerprint -> cold sample, which
            # the fault plan kills; the stale 300-set sketch stands in.
            resp = eng.query(IMQuery(dataset="amazon", k=3, theta_cap=400))
            assert resp.ok and resp.degraded and not resp.cached
            assert resp.num_rrrsets == 300  # served from the stale sketch
            assert eng.stats.degraded == 1
            assert eng.stats.cold_samples == 0

            # Degraded entries are never cached under the failed fingerprint:
            # the next identical query attempts the real sketch again.
            again = eng.query(IMQuery(dataset="amazon", k=3, theta_cap=400))
            assert again.degraded and not again.cached
            assert eng.stats.degraded == 2

    def test_degraded_flag_on_the_wire(self, tmp_path):
        self._seed_artifact(tmp_path)
        cfg = EngineConfig(artifact_dir=tmp_path, default_theta=300)
        with QueryEngine(config=cfg, context=_failing_context()) as eng:
            resp = eng.query(IMQuery(dataset="amazon", k=2, theta_cap=400))
        assert resp.to_dict()["degraded"] is True

    def test_no_stale_artifact_means_error_response(self, tmp_path):
        cfg = EngineConfig(artifact_dir=tmp_path, default_theta=300)
        with QueryEngine(config=cfg, context=_failing_context()) as eng:
            resp = eng.query(IMQuery(dataset="amazon", k=3, theta_cap=300))
        assert resp.status == "error"
        assert "FaultInjectedError" in resp.error
        assert eng.stats.errors == 1 and eng.stats.degraded == 0

    def test_wrong_dataset_stale_not_used(self, tmp_path):
        self._seed_artifact(tmp_path)  # an *amazon* sketch
        cfg = EngineConfig(artifact_dir=tmp_path, default_theta=300)
        with QueryEngine(config=cfg, context=_failing_context()) as eng:
            resp = eng.query(IMQuery(dataset="dblp", k=3, theta_cap=300))
        assert resp.status == "error"  # dblp has no compatible stale sketch

    def test_no_artifact_store_means_error_response(self):
        cfg = EngineConfig(artifact_dir=None, default_theta=300)
        with QueryEngine(config=cfg, context=_failing_context()) as eng:
            resp = eng.query(IMQuery(dataset="amazon", k=3, theta_cap=300))
        assert resp.status == "error"

    def test_engine_retry_recovers_transient_cold_failure(self, tmp_path):
        ctx = ExecutionContext(
            BackendConfig(
                backend="serial",
                faults=FaultPlan.parse("crash@task:0"),  # fires once
                retry=RetryPolicy(max_attempts=2),
                telemetry_label="service",
            )
        )
        cfg = EngineConfig(artifact_dir=tmp_path, default_theta=300)
        with QueryEngine(config=cfg, context=ctx) as eng:
            resp = eng.query(IMQuery(dataset="amazon", k=3, theta_cap=300))
            assert resp.ok and not resp.degraded  # retried through the fault
            assert eng.stats.cold_samples == 1

    def test_degraded_telemetry_counter(self, tmp_path):
        self._seed_artifact(tmp_path)
        cfg = EngineConfig(artifact_dir=tmp_path, default_theta=300)
        with telemetry.session() as tel:
            with QueryEngine(config=cfg, context=_failing_context()) as eng:
                eng.query(IMQuery(dataset="amazon", k=3, theta_cap=400))
        snap = tel.snapshot()["counters"]
        assert snap["resilience.degraded_responses"] == 1.0
        assert snap["service.degraded"] == 1.0
