"""Router determinism and failure handling (the tentpole acceptance tests).

The load-bearing claims: under a fixed seed, a sharded cluster of any
shape returns **byte-identical** seed sets (and coverage/spread) to the
single-node :class:`QueryEngine`; one replica killed mid-stream changes
nothing visible; a whole shard down degrades to an answer that is *exact*
over the surviving sub-sketch and flagged ``degraded:true``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.core.parallel_sampling import parallel_generate
from repro.graph.io import graph_fingerprint
from repro.resilience.retry import RetryPolicy
from repro.runtime.backends import SerialBackend
from repro.service import EngineConfig, IMQuery, QueryEngine, sketch_fingerprint
from repro.dynamic import DynamicService
from repro.errors import ParameterError
from repro.shard import Router, RouterConfig, ShardCluster, ShardPlan

from conftest import make_graph
from test_shard import THETA, small_graph, spec_for

SEED = 3


def query(k=6, **kw):
    kw.setdefault("dataset", "synth")
    kw.setdefault("theta_cap", THETA)
    kw.setdefault("seed", SEED)
    return IMQuery(k=k, **kw)


@pytest.fixture(scope="module")
def graph():
    return small_graph()


@pytest.fixture(scope="module")
def reference(graph):
    """Single-node engine answers for several k on the same sketch."""
    with QueryEngine(config=EngineConfig()) as engine:
        engine.install_graph("synth", graph)
        resps = {k: engine.query(query(k=k)) for k in (1, 4, 6)}
        batch = engine.execute([query(k=3), query(k=6), query(k=3)])
    return resps, batch


def make_cluster(graph, num_shards, replication=1, **router_kw):
    plan = ShardPlan(num_shards=num_shards, replication=replication)
    cluster = ShardCluster(
        plan, router_config=RouterConfig(**router_kw) if router_kw else None
    )
    cluster.install_graph("synth", graph)
    return cluster


# ============================================================== determinism
class TestByteIdenticalSelection:
    @pytest.mark.parametrize("num_shards,replication", [(1, 1), (2, 2), (8, 2)])
    def test_matches_single_node_engine(
        self, graph, reference, num_shards, replication
    ):
        refs, _ = reference
        with make_cluster(graph, num_shards, replication) as cluster:
            for k, ref in refs.items():
                resp = cluster.query(query(k=k))
                assert resp.status == "ok" and not resp.degraded
                assert resp.seeds == ref.seeds, f"k={k} seeds diverge"
                assert resp.coverage_fraction == ref.coverage_fraction
                assert resp.spread_estimate == ref.spread_estimate
                assert resp.num_rrrsets == ref.num_rrrsets

    def test_batch_grouping_matches_engine(self, graph, reference):
        _, ref_batch = reference
        with make_cluster(graph, 4) as cluster:
            batch = cluster.execute([query(k=3), query(k=6), query(k=3)])
            assert [r.seeds for r in batch] == [r.seeds for r in ref_batch]
            # One scatter group served all three queries (prefix property).
            assert cluster.router.stats.batches == 1
            assert batch[0].seeds == batch[1].seeds[:3]

    def test_fill_path_matches_engine(self):
        """k large enough to cover every set exercises the lowest-id fill."""
        g = make_graph([(i, (i + 1) % 8, 1.0) for i in range(8)], n=8)
        q = query(k=7, theta_cap=20)
        with QueryEngine(config=EngineConfig()) as engine:
            engine.install_graph("synth", g)
            ref = engine.query(q)
        with make_cluster(g, 3) as cluster:
            resp = cluster.query(q)
        assert resp.seeds == ref.seeds
        assert resp.coverage_fraction == ref.coverage_fraction

    def test_warm_second_query(self, graph):
        with make_cluster(graph, 2) as cluster:
            first = cluster.query(query())
            second = cluster.query(query())
            assert not first.cached and second.cached
            assert first.seeds == second.seeds


# ================================================================= failover
class TestReplicaFailover:
    def test_replica_killed_mid_stream_is_invisible(self, graph, reference):
        refs, _ = reference
        with make_cluster(graph, 2, replication=2) as cluster:
            # Dies after 3 scatter ops: mid-selection, not at open.
            cluster.worker(0, 0).fail_after(3)
            resp = cluster.query(query(k=6))
            assert resp.status == "ok" and not resp.degraded
            assert resp.seeds == refs[6].seeds
            assert cluster.router.stats.failovers >= 1
            health = cluster.router.health_snapshot()
            # One recorded failure; the router deprioritises the replica so
            # it is never retried (and never reaches unhealthy_after=2).
            assert health["0"]["s0r0"]["consecutive_failures"] >= 1

    def test_replica_dead_at_open_is_invisible(self, graph, reference):
        refs, _ = reference
        with make_cluster(graph, 2, replication=2) as cluster:
            cluster.kill(1, 0)
            resp = cluster.query(query(k=6))
            assert resp.status == "ok" and not resp.degraded
            assert resp.seeds == refs[6].seeds

    def test_retry_policy_classification_respected(self, graph):
        """Non-retryable errors must not burn through replicas."""
        with make_cluster(graph, 1, replication=2) as cluster:
            calls = []
            worker = cluster.worker(0, 0)
            original = worker.session_open

            def boom(*a, **kw):
                calls.append(1)
                raise ParameterError("bad")

            worker.session_open = boom
            resp = cluster.query(query())
            assert resp.status == "error" and "ParameterError" in resp.error
            assert len(calls) == 1, "ParameterError must not fail over"
            worker.session_open = original

    def test_failed_replica_deprioritised_then_recovers(self, graph):
        with make_cluster(graph, 1, replication=2) as cluster:
            cluster.worker(0, 0).kill()
            cluster.query(query())
            order = cluster.router._ordered_replicas(0)
            assert order[0].name == "s0r1", "unhealthy replica tried last"
            cluster.revive(0, 0)
            assert cluster.query(query()).status == "ok"


# =============================================================== shard loss
class TestShardLoss:
    def expected_degraded(self, graph, surviving_shards, plan, k):
        """Single-node selection over only the surviving sub-sketch."""
        gfp = graph_fingerprint(graph)
        spec = spec_for()
        fp = sketch_fingerprint(gfp, "IC", spec.epsilon, SEED, THETA)
        full = parallel_generate(
            graph, "IC", THETA, num_workers=1, seed=SEED,
            backend=SerialBackend(),
        )
        owners = plan.assign_sets(fp, THETA, sizes=full.sizes())
        from repro.sketch.store import FlatRRRStore

        survivor = FlatRRRStore(graph.num_vertices, sort_sets=True)
        for i in range(THETA):
            if owners[i] in surviving_shards:
                survivor.append(full.get(i))
        with QueryEngine(config=EngineConfig()) as engine:
            engine.install_graph("synth", graph)
            engine.warm(fp, survivor)
            return engine.query(query(k=k)), len(survivor)

    def test_whole_shard_down_degrades_exactly(self, graph):
        plan = ShardPlan(num_shards=2, replication=2)
        with ShardCluster(plan) as cluster:
            cluster.install_graph("synth", graph)
            cluster.kill(1)
            resp = cluster.query(query(k=5))
            assert resp.status == "ok" and resp.degraded
        ref, num_surviving = self.expected_degraded(graph, {0}, plan, k=5)
        assert resp.seeds == ref.seeds
        assert resp.num_rrrsets == num_surviving
        assert resp.coverage_fraction == ref.coverage_fraction

    def test_shard_lost_mid_query_degrades_exactly(self, graph):
        plan = ShardPlan(num_shards=2, replication=1)
        with ShardCluster(plan) as cluster:
            cluster.install_graph("synth", graph)
            cluster.query(query())  # warm both shards first
            cluster.worker(1, 0).fail_after(2)
            resp = cluster.query(query(k=5))
            assert resp.status == "ok" and resp.degraded
            assert cluster.router.stats.resyncs == 1
        ref, _ = self.expected_degraded(graph, {0}, plan, k=5)
        assert resp.seeds == ref.seeds
        assert resp.coverage_fraction == ref.coverage_fraction

    def test_all_shards_down_is_an_error(self, graph):
        with make_cluster(graph, 2) as cluster:
            cluster.kill(0)
            cluster.kill(1)
            resp = cluster.query(query())
            assert resp.status == "error"
            assert "all shards down" in resp.error

    def test_no_degraded_config_turns_loss_into_error(self, graph):
        with make_cluster(graph, 2, allow_degraded=False) as cluster:
            cluster.kill(1)
            resp = cluster.query(query())
            assert resp.status == "error"
            assert "degraded" in resp.error


# ============================================================ router surface
class TestRouterSurface:
    def test_invalid_queries_isolated_in_batch(self, graph):
        with make_cluster(graph, 2) as cluster:
            responses = cluster.execute(
                [query(k=6), IMQuery(dataset="synth", k=0), query(k=9999)]
            )
            assert responses[0].status == "ok"
            assert responses[1].status == "error"
            assert responses[2].status == "error"
            assert "exceeds the vertex count" in responses[2].error

    def test_unknown_dataset_errors(self):
        with ShardCluster(ShardPlan(num_shards=2)) as cluster:
            resp = cluster.query(query(dataset="no-such-dataset"))
            assert resp.status == "error"

    def test_expired_deadline_times_out(self, graph):
        with make_cluster(graph, 2) as cluster:
            resp = cluster.query(query(deadline_s=0.0))
            assert resp.status == "timeout"

    def test_worker_deadline_misses_counted_but_served(self, graph):
        with make_cluster(graph, 2, worker_deadline_s=0.0) as cluster:
            resp = cluster.query(query())
            assert resp.status == "ok"
            assert cluster.router.stats.deadline_misses > 0

    def test_router_rejects_mismatched_workers(self, graph):
        with ShardCluster(ShardPlan(num_shards=2)) as cluster:
            with pytest.raises(ParameterError, match="no workers for shards"):
                Router([cluster.workers[0]])
            with pytest.raises(ParameterError):
                Router([])

    def test_retry_policy_backoff_is_used(self, graph):
        """max_attempts > 1 retries the same replica before failing over."""
        with ShardCluster(
            ShardPlan(num_shards=1, replication=1),
            router_config=RouterConfig(retry=RetryPolicy(max_attempts=3)),
        ) as cluster:
            cluster.install_graph("synth", graph)
            cluster.worker(0, 0).fail_after(0)  # first op dies, then dead
            resp = cluster.query(query())
            assert resp.status == "error"
            assert cluster.router.stats.scatter_calls >= 3

    def test_telemetry_counters_emitted(self, graph):
        with telemetry.session() as tel:
            with make_cluster(graph, 2, replication=2) as cluster:
                cluster.kill(0, 0)
                cluster.query(query())
            counters = tel.snapshot()["counters"]
            assert counters.get("shard.router.queries", 0) >= 1
            assert counters.get("shard.router.failovers", 0) >= 1
            gauges = tel.snapshot()["gauges"]
            assert "shard.stats.queries" in gauges
            assert "shard.stats.healthy_replicas" in gauges


# ======================================================== dynamic publishing
class TestDynamicFanOut:
    def test_publish_hook_keeps_cluster_in_lockstep(self, graph):
        """Every epoch the DynamicService publishes reaches the shards, and
        the cluster's answers match the service's engine exactly."""
        from repro.dynamic.delta import EdgeUpdate

        plan = ShardPlan(num_shards=2, replication=2)
        with ShardCluster(plan) as cluster, DynamicService(
            "synth", graph, num_sets=THETA, seed=SEED
        ) as service:
            service.add_publish_hook(cluster.publish)  # replays current epoch

            def compare(k=5):
                ref = service.query(k=k)
                got = cluster.query(
                    query(k=k, dataset="synth", theta_cap=THETA, seed=SEED)
                )
                assert got.status == "ok"
                assert got.seeds == ref.seeds
                assert got.coverage_fraction == ref.coverage_fraction

            compare()
            service.apply(
                [EdgeUpdate("insert", 0, graph.num_vertices - 1, 0.9)]
            )
            compare()
