"""End-to-end tests for the repro.control plane (the PR's acceptance bar).

The load-bearing claims:

- an injected replica death plus a synthetic p99 breach drive the
  controller through revive → scale R→R+1 → (cooldown) → scale back to R,
  with **byte-identical, non-degraded** answers at every step and zero
  cold builds on revived/added replicas;
- a canary mismatch during an epoch rollout rolls the cluster back to the
  previous epoch, marks the control plane ``degraded:true``, and bumps
  ``control.rollbacks``;
- ``repro control run --dry-run`` / ``plan`` over a probe fixture emit a
  byte-identical JSON action plan on every invocation.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
from pathlib import Path

import pytest

import repro.cli as cli
from repro import telemetry
from repro.control import (
    AdmissionConfig,
    AdmissionPolicy,
    AutoscaleConfig,
    AutoscalePolicy,
    Controller,
    ControllerConfig,
    EpochRollout,
    HealthProbe,
    HealthSample,
    ReplicaHealth,
    SelfHealPolicy,
)
from repro.dynamic import DynamicService
from repro.dynamic.delta import EdgeUpdate
from repro.errors import ParameterError
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.resilience import FaultPlan
from repro.shard import ShardCluster, ShardPlan

from test_gateway import FakeEngine
from test_shard import THETA, small_graph, spec_for
from test_shard_router import SEED, query

SHM_DIR = Path("/dev/shm")


def make_controller(cluster, policies, **kw):
    """A controller on virtual time: the clock steps once per call."""
    steps = itertools.count()
    return Controller(
        HealthProbe(cluster=cluster),
        policies,
        cluster=cluster,
        clock=lambda: float(next(steps)),
        sleep=lambda _s: None,
        **kw,
    )


class TestControllerEndToEnd:
    def test_heal_then_scale_up_then_scale_down(self):
        """The acceptance scenario: revive a killed replica, scale 1→2 on a
        sustained synthetic p99 breach, scale 2→1 once idle past the
        cooldown — answers byte-identical and non-degraded throughout."""
        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=1)
        with telemetry.session() as tel, ShardCluster(plan) as cluster:
            cluster.install_graph("synth", g)
            cluster.build(spec_for())
            ref = cluster.query(query(k=6))
            assert ref.ok and not ref.degraded

            controller = make_controller(
                cluster,
                [
                    SelfHealPolicy(),
                    AutoscalePolicy(
                        AutoscaleConfig(
                            p99_slo_s=0.5, breach_ticks=2, idle_ticks=2,
                            cooldown_ticks=2, min_replicas=1, max_replicas=2,
                        )
                    ),
                ],
            )

            def check_identical():
                resp = cluster.query(query(k=6))
                assert resp.ok and not resp.degraded
                assert resp.seeds == ref.seeds

            def breach():
                hist = tel.registry.histogram("gateway.request_latency_s")
                for _ in range(20):
                    hist.observe(2.0)

            # Tick 0: the dead replica (cache dropped while down) is
            # revived and re-warmed — never cold-built.
            cluster.kill(1, 0)
            cluster.worker(1, 0).engine.cache.clear()
            r0 = controller.tick()
            assert [a["kind"] for a in r0.outcomes] == ["revive"]
            assert r0.outcomes[0]["outcome"] == "applied"
            assert not cluster.worker(1, 0).dead
            check_identical()
            assert cluster.worker(1, 0).stats.cold_builds == 0

            # Ticks 1-2: sustained synthetic p99 breach → exactly one
            # scale-up, bounded by max_replicas.
            breach()
            r1 = controller.tick()
            assert r1.outcomes == []
            assert r1.sample.p99_latency_s > 0.5
            breach()
            r2 = controller.tick()
            assert [a["kind"] for a in r2.outcomes] == ["scale_up"]
            assert len(cluster.workers) == 4
            for shard in (0, 1):
                w = cluster.worker(shard, 1)
                assert w.stats.cold_builds == 0  # warmed from published tier
            check_identical()

            # Tick 3: idle, but still inside the cooldown window.
            r3 = controller.tick()
            assert r3.outcomes == []
            # Tick 4: sustained idle past the cooldown → scale back down.
            r4 = controller.tick()
            assert [a["kind"] for a in r4.outcomes] == ["scale_down"]
            assert len(cluster.workers) == 2
            check_identical()

            counters = tel.snapshot()["counters"]
            assert counters["control.ticks"] == 5
            assert counters["control.revives"] == 1
            assert counters["control.scale_events"] == 2
            assert counters["control.actions.scale_up"] == 1
            assert counters["control.actions.scale_down"] == 1
            status = controller.status()
            assert status["ticks"] == 5
            assert status["action_failures"] == 0
            assert status["quarantined"] == []

    def test_transient_action_fault_is_retried(self):
        """A crash fault on the first apply attempt is absorbed by the
        per-action retry; the revive still lands."""
        g = small_graph()
        with ShardCluster(ShardPlan(num_shards=1)) as cluster:
            cluster.install_graph("synth", g)
            cluster.build(spec_for())
            cluster.kill(0, 0)
            controller = make_controller(
                cluster,
                [SelfHealPolicy()],
                fault_plan=FaultPlan.parse("crash@action:0"),
            )
            report = controller.tick()
            assert report.outcomes[0]["kind"] == "revive"
            assert report.outcomes[0]["outcome"] == "applied"
            assert not cluster.worker(0, 0).dead

    def test_exhausted_action_fault_fails_the_action_not_the_loop(self):
        g = small_graph()
        with telemetry.session() as tel, ShardCluster(
            ShardPlan(num_shards=1)
        ) as cluster:
            cluster.install_graph("synth", g)
            cluster.build(spec_for())
            cluster.kill(0, 0)
            controller = make_controller(
                cluster,
                [SelfHealPolicy()],
                # Crashes both retry attempts of action #0.
                fault_plan=FaultPlan.parse("crash@action:0x2"),
            )
            r0 = controller.tick()
            assert r0.outcomes[0]["outcome"] == "failed"
            assert "error" in r0.outcomes[0]
            assert cluster.worker(0, 0).dead
            # The loop survives; the next tick's revive (action #1) works.
            r1 = controller.tick()
            assert r1.outcomes[0]["outcome"] == "applied"
            assert not cluster.worker(0, 0).dead
            counters = tel.snapshot()["counters"]
            assert counters["control.action_failures"] == 1
            assert controller.status()["action_failures"] == 1

    def test_tune_admission_reaches_the_gateway(self):
        """The admission policy's action retunes a live GatewayServer."""
        server = GatewayServer(
            FakeEngine(), config=GatewayConfig(queue_depth=4)
        )
        full = HealthSample(
            ts=0.0, queue_capacity=4, shed_rate=2.0,
            shed_by_cause={"queue_full": 2.0}, source="fixture",
        )
        controller = Controller(
            lambda: full,
            [AdmissionPolicy(AdmissionConfig(min_queue_depth=2, breach_ticks=2))],
            gateway=server,
            sleep=lambda _s: None,
        )
        assert controller.tick().outcomes == []
        r1 = controller.tick()
        assert [a["kind"] for a in r1.outcomes] == ["tune_admission"]
        assert r1.outcomes[0]["outcome"] == "applied"
        assert server.config.queue_depth == 8

    def test_dry_run_plans_without_touching_the_cluster(self):
        g = small_graph()
        with ShardCluster(ShardPlan(num_shards=1)) as cluster:
            cluster.install_graph("synth", g)
            cluster.build(spec_for())
            cluster.kill(0, 0)
            controller = make_controller(
                cluster, [SelfHealPolicy()],
                config=ControllerConfig(dry_run=True),
            )
            report = controller.tick()
            assert report.outcomes[0]["outcome"] == "planned"
            assert cluster.worker(0, 0).dead  # nothing applied

    def test_missing_handle_is_a_failed_action(self):
        dead = HealthSample(
            ts=0.0, num_shards=1,
            replicas=(
                ReplicaHealth(name="s0r0", shard=0, replica=0, dead=True),
            ),
            source="fixture",
        )
        controller = Controller(
            lambda: dead, [SelfHealPolicy()], sleep=lambda _s: None
        )
        report = controller.tick()
        assert report.outcomes[0]["outcome"] == "failed"
        assert "handle" in report.outcomes[0]["error"]


class TestEpochRollout:
    def test_promote_rollback_recover(self):
        """Epoch lifecycle: a clean epoch promotes; a corrupted canary
        comparison rolls back (cluster keeps serving the old epoch,
        non-degraded answers, ``control.rollbacks`` bumped); the next
        clean epoch recovers."""
        g = small_graph()
        plan = ShardPlan(num_shards=2, replication=2)
        with telemetry.session() as tel, ShardCluster(
            plan
        ) as cluster, DynamicService(
            "synth", g, num_sets=THETA, seed=SEED
        ) as service:
            rollout = EpochRollout(
                service, cluster,
                # Epoch 2's canary seed set is mangled deterministically.
                fault_plan=FaultPlan.parse("corrupt@canary:2"),
            )
            rollout.attach(replay=True)  # bootstraps the current epoch

            def cluster_seeds():
                resp = cluster.query(query(k=5))
                assert resp.ok and not resp.degraded
                return resp.seeds

            assert cluster_seeds() == list(service.query(k=5).seeds)

            # Epoch 1: clean → promoted, cluster in lockstep.
            service.apply(
                [EdgeUpdate("insert", 0, g.num_vertices - 1, 0.9)]
            )
            assert rollout.history[-1]["action"] == "promote"
            assert not rollout.degraded
            epoch1_seeds = cluster_seeds()
            assert epoch1_seeds == list(service.query(k=5).seeds)

            # Epoch 2: the canary comparison is corrupted → rollback.
            service.apply([EdgeUpdate("insert", 1, 5, 0.8)])
            last = rollout.history[-1]
            assert last["action"] == "rollback"
            assert last["degraded"] is True
            assert rollout.degraded and rollout.rollbacks == 1
            # The cluster still serves epoch 1, exactly and non-degraded.
            assert cluster_seeds() == epoch1_seeds
            counters = tel.snapshot()["counters"]
            assert counters["control.rollbacks"] == 1
            assert tel.snapshot()["gauges"]["control.rollout_degraded"] == 1.0

            # Epoch 3: clean again → promoted, degradation clears.
            service.apply([EdgeUpdate("insert", 2, 9, 0.7)])
            assert rollout.history[-1]["action"] == "promote"
            assert not rollout.degraded
            assert cluster_seeds() == list(service.query(k=5).seeds)
            assert rollout.status()["promotions"] == 2
            assert rollout.status()["rollbacks"] == 1
            assert rollout.detach() is True

    def test_dead_canary_shard_rolls_back(self):
        """No live replica on some shard → the epoch cannot be canaried;
        the rollout refuses it rather than fanning out unverified."""
        g = small_graph()
        with ShardCluster(
            ShardPlan(num_shards=2, replication=1)
        ) as cluster, DynamicService(
            "synth", g, num_sets=THETA, seed=SEED
        ) as service:
            rollout = EpochRollout(service, cluster)
            rollout.attach(replay=True)
            cluster.kill(0)
            service.apply([EdgeUpdate("insert", 0, 7, 0.9)])
            last = rollout.history[-1]
            assert last["action"] == "rollback"
            assert "canary" in (last["error"] or "")
            assert rollout.degraded


class TestGatewayAdmissionSurface:
    def test_stats_snapshot_exposes_admission_state(self):
        server = GatewayServer(
            FakeEngine(),
            config=GatewayConfig(queue_depth=4, rate_limit_per_s=10.0),
        )
        snap = server.stats_snapshot()["gateway"]
        for key in (
            "queue_depth", "queue_capacity", "queue_deadline_s",
            "predicted_wait_s", "rate_limit_per_s", "rate_buckets",
            "shed_queue_full", "shed_deadline", "shed_stale",
            "shed_rate_limited",
        ):
            assert key in snap, f"gateway stats missing {key}"
        assert snap["queue_capacity"] == 4
        assert snap["rate_buckets"] == {
            "clients": 0, "min_fill": 1.0, "tokens": 0.0
        }

    def test_set_admission_retunes_and_validates(self):
        server = GatewayServer(
            FakeEngine(),
            config=GatewayConfig(queue_depth=4, rate_limit_per_s=10.0),
        )
        effective = server.set_admission(
            queue_depth=8, rate_limit_per_s=5.0, queue_deadline_s=2.5
        )
        assert effective == {
            "queue_depth": 8, "rate_limit_per_s": 5.0,
            "queue_deadline_s": 2.5,
        }
        assert server.config.queue_depth == 8
        assert server.stats_snapshot()["gateway"]["queue_capacity"] == 8
        # No-op call changes nothing.
        assert server.set_admission()["queue_depth"] == 8
        # The replaced config re-runs GatewayConfig validation.
        with pytest.raises(ParameterError):
            server.set_admission(queue_depth=0)


FIXTURE_DEAD = {
    "ts": 0.0, "num_shards": 1,
    "replicas": [{"name": "s0r0", "shard": 0, "replica": 0, "dead": True}],
    "p99_latency_s": 0.9,
}
FIXTURE_BREACH = {
    "ts": 1.0, "num_shards": 1,
    "replicas": [{"name": "s0r0", "shard": 0, "replica": 0, "dead": False}],
    "p99_latency_s": 0.9,
}


class TestControlCLI:
    def write_fixture(self, tmp_path):
        path = tmp_path / "probe.jsonl"
        rows = [FIXTURE_DEAD] + [
            {**FIXTURE_BREACH, "ts": float(t)} for t in range(1, 5)
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        return path

    def run_cli(self, capsys, argv):
        code = cli.main(argv)
        out = capsys.readouterr().out
        return code, out

    def test_plan_emits_a_deterministic_action_plan(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        code, out1 = self.run_cli(
            capsys, ["control", "plan", "--fixture", str(fixture)]
        )
        assert code == 0
        _, out2 = self.run_cli(
            capsys, ["control", "plan", "--fixture", str(fixture)]
        )
        assert out1 == out2, "plan output must be byte-identical across runs"
        reports = [json.loads(line) for line in out1.splitlines()]
        assert len(reports) == 5
        kinds = [[a["kind"] for a in r["actions"]] for r in reports]
        # Revive the dead replica, then one scale-up once the p99 breach
        # has persisted for the default 3 ticks (cooldown gates the rest).
        assert kinds == [["revive"], [], ["scale_up"], [], []]
        assert all(
            a["outcome"] == "planned" for r in reports for a in r["actions"]
        )
        assert all(r["sample"]["source"] == "fixture" for r in reports)

    def test_run_dry_run_over_fixture_matches_plan(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        _, planned = self.run_cli(
            capsys, ["control", "plan", "--fixture", str(fixture)]
        )
        code, ran = self.run_cli(
            capsys,
            ["control", "run", "--dry-run", "--fixture", str(fixture)],
        )
        assert code == 0 and ran == planned

    def test_ticks_flag_truncates_the_fixture(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        code, out = self.run_cli(
            capsys,
            ["control", "plan", "--fixture", str(fixture), "--ticks", "2"],
        )
        assert code == 0 and len(out.splitlines()) == 2

    def test_status_prints_the_first_fixture_sample(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        code, out = self.run_cli(
            capsys, ["control", "status", "--fixture", str(fixture)]
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["replicas"][0]["dead"] is True

    def test_plan_without_fixture_is_a_parameter_error(self, tmp_path, capsys):
        assert cli.main(["control", "plan"]) == 2
        err = capsys.readouterr().err
        assert "--fixture" in err

    def test_empty_fixture_is_a_parameter_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli.main(["control", "plan", "--fixture", str(empty)]) == 2


class TestShmCLI:
    def test_list_and_sweep_emit_json(self, capsys):
        assert cli.main(["shm", "list", "--prefix", "tclz"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == {
            "op": "list", "prefix": "tclz", "segments": [], "count": 0
        }
        assert cli.main(["shm", "sweep", "--prefix", "tclz"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == {
            "op": "sweep", "prefix": "tclz", "removed": [], "count": 0
        }

    @pytest.mark.skipif(not SHM_DIR.is_dir(), reason="needs /dev/shm")
    def test_sweep_reclaims_a_dead_owners_segment(self, capsys):
        proc = subprocess.run(
            ["sh", "-c", "echo $$"], capture_output=True, text=True,
            check=True,
        )
        dead_pid = int(proc.stdout.strip())
        orphan = SHM_DIR / f"tswc-{'ab' * 8}-{dead_pid:x}"
        orphan.write_bytes(b"\0" * 64)
        live = SHM_DIR / f"tswc-{'cd' * 8}-{os.getpid():x}"
        live.write_bytes(b"\0" * 64)
        try:
            assert cli.main(["shm", "sweep", "--prefix", "tswc"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["count"] == 1 and doc["removed"] == [orphan.name]
            assert not orphan.exists() and live.exists()
        finally:
            orphan.unlink(missing_ok=True)
            live.unlink(missing_ok=True)
