"""Tests for the Independent Cascade model (forward + reverse)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.ic import ICModel, gather_frontier_edges
from repro.errors import ParameterError
from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.weights import assign_ic_weights

from conftest import make_graph


class TestGatherFrontierEdges:
    def test_single_vertex(self, star_graph):
        nbrs, probs = gather_frontier_edges(star_graph, np.array([0]))
        assert sorted(nbrs.tolist()) == list(range(1, 9))
        assert np.all(probs == 1.0)

    def test_multiple_vertices_concatenate(self, line_graph):
        nbrs, _ = gather_frontier_edges(line_graph, np.array([0, 2]))
        assert sorted(nbrs.tolist()) == [1, 3]

    def test_empty_frontier(self, line_graph):
        nbrs, probs = gather_frontier_edges(line_graph, np.empty(0, dtype=np.int64))
        assert nbrs.size == 0 and probs.size == 0

    def test_leaf_frontier(self, line_graph):
        nbrs, _ = gather_frontier_edges(line_graph, np.array([4]))
        assert nbrs.size == 0

    def test_probs_aligned(self, diamond_graph):
        nbrs, probs = gather_frontier_edges(diamond_graph, np.array([0]))
        got = dict(zip(nbrs.tolist(), probs.tolist()))
        assert got == {1: 1.0, 2: 0.5}

    def test_duplicate_frontier_entries_duplicate_edges(self, star_graph):
        nbrs, _ = gather_frontier_edges(star_graph, np.array([0, 0]))
        assert nbrs.size == 16


class TestReverseSample:
    def test_deterministic_line(self, line_graph, rng):
        model = ICModel(line_graph)
        # All probabilities 1: reverse reach of vertex 4 is everything.
        rrr = model.reverse_sample(4, rng)
        assert sorted(rrr.tolist()) == [0, 1, 2, 3, 4]

    def test_root_always_included(self, line_graph, rng):
        model = ICModel(line_graph)
        rrr = model.reverse_sample(0, rng)
        assert 0 in rrr.tolist()
        assert rrr.size == 1  # vertex 0 has no in-edges

    def test_zero_probability_blocks(self, rng):
        g = make_graph([(0, 1, 0.0)], n=2)
        model = ICModel(g)
        assert model.reverse_sample(1, rng).tolist() == [1]

    def test_no_duplicates(self, cycle_graph, rng):
        model = ICModel(cycle_graph)
        rrr = model.reverse_sample(0, rng)
        assert len(set(rrr.tolist())) == rrr.size

    def test_respects_direction(self, line_graph, rng):
        model = ICModel(line_graph)
        # Nothing downstream of 2 can appear in its reverse set.
        rrr = model.reverse_sample(2, rng)
        assert set(rrr.tolist()) <= {0, 1, 2}

    def test_epoch_isolation_between_samples(self, cycle_graph, rng):
        model = ICModel(cycle_graph)
        a = model.reverse_sample(0, rng)
        b = model.reverse_sample(3, rng)
        assert 3 in b.tolist()
        assert a.size == b.size == 6  # determinism with p=1 edges

    def test_monte_carlo_probability(self):
        # Single edge with p=0.3: P(0 in RRR(1)) must approach 0.3.
        g = make_graph([(0, 1, 0.3)], n=2)
        model = ICModel(g)
        rng = np.random.default_rng(0)
        hits = sum(
            model.reverse_sample(1, rng).size == 2 for _ in range(4000)
        )
        assert 0.27 < hits / 4000 < 0.33

    def test_dtype(self, cycle_graph, rng):
        assert ICModel(cycle_graph).reverse_sample(0, rng).dtype == np.int32


class TestForwardSample:
    def test_full_propagation(self, line_graph, rng):
        model = ICModel(line_graph)
        out = model.forward_sample(np.array([0]), rng)
        assert sorted(out.tolist()) == [0, 1, 2, 3, 4]

    def test_seeds_always_active(self, isolated_graph, rng):
        model = ICModel(isolated_graph)
        out = model.forward_sample(np.array([2, 4]), rng)
        assert sorted(out.tolist()) == [2, 4]

    def test_zero_prob_edge_never_fires(self, rng):
        g = make_graph([(0, 1, 0.0)], n=2)
        model = ICModel(g)
        for _ in range(50):
            assert ICModel(g).forward_sample(np.array([0]), rng).tolist() == [0]

    def test_multiple_seeds_union(self, two_triangles, rng):
        model = ICModel(two_triangles)
        out = model.forward_sample(np.array([0, 3]), rng)
        assert sorted(out.tolist()) == [0, 1, 2, 3, 4, 5]

    def test_single_triangle_contained(self, two_triangles, rng):
        model = ICModel(two_triangles)
        out = model.forward_sample(np.array([0]), rng)
        assert set(out.tolist()) == {0, 1, 2}

    def test_monte_carlo_edge_probability(self):
        g = make_graph([(0, 1, 0.4)], n=2)
        model = ICModel(g)
        rng = np.random.default_rng(1)
        hits = sum(
            model.forward_sample(np.array([0]), rng).size == 2
            for _ in range(4000)
        )
        assert 0.36 < hits / 4000 < 0.44


class TestRISEquivalence:
    """The identity RIS rests on: P(v in RRR(u)) == P(u activates v)."""

    @given(st.integers(0, 2000))
    @settings(max_examples=10, deadline=None)
    def test_reverse_forward_symmetry(self, seed):
        src, dst = erdos_renyi(25, 80, seed=seed)
        g = assign_ic_weights(
            from_edge_array(src, dst, num_vertices=25), seed=seed
        )
        model = ICModel(g)
        rng = np.random.default_rng(seed)
        u, v = 3, 17
        trials = 1200
        fwd = sum(
            v in model.forward_sample(np.array([u]), rng).tolist()
            for _ in range(trials)
        )
        rev = sum(
            u in model.reverse_sample(v, rng).tolist() for _ in range(trials)
        )
        # Both estimate the same probability; allow Monte-Carlo slack.
        assert abs(fwd - rev) / trials < 0.08

    def test_random_root_uniform(self, cycle_graph):
        model = ICModel(cycle_graph)
        rng = np.random.default_rng(2)
        roots = [model.random_root(rng) for _ in range(1200)]
        counts = np.bincount(roots, minlength=6)
        assert counts.min() > 120  # roughly uniform over 6 vertices
