"""Tests for the IC / LT edge-weight schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.weights import (
    assign_ic_weights,
    assign_lt_weights,
    lt_incoming_weight_sums,
)


@pytest.fixture
def medium_graph():
    src, dst = erdos_renyi(200, 1500, seed=4)
    return from_edge_array(src, dst, num_vertices=200)


class TestICWeights:
    def test_uniform_in_unit_interval(self, medium_graph):
        g = assign_ic_weights(medium_graph, scheme="uniform", seed=1)
        assert np.all((g.probs >= 0) & (g.probs <= 1))
        # Uniform [0,1] draws should average near 0.5.
        assert 0.4 < g.probs.mean() < 0.6

    def test_uniform_scale(self, medium_graph):
        g = assign_ic_weights(medium_graph, scheme="uniform", seed=1, scale=0.1)
        assert g.probs.max() <= 0.1

    def test_constant(self, medium_graph):
        g = assign_ic_weights(medium_graph, scheme="constant", scale=0.05)
        assert np.all(g.probs == 0.05)

    def test_trivalency_values(self, medium_graph):
        g = assign_ic_weights(medium_graph, scheme="trivalency", seed=2)
        assert set(np.unique(g.probs)) <= {0.1, 0.01, 0.001}

    def test_weighted_cascade(self, medium_graph):
        g = assign_ic_weights(medium_graph, scheme="weighted_cascade")
        indeg = np.bincount(g.indices, minlength=g.num_vertices)
        # Each in-edge of v carries 1/indeg(v): incoming sums are exactly 1.
        sums = lt_incoming_weight_sums(g)
        has_in = indeg > 0
        assert np.allclose(sums[has_in], 1.0)

    def test_topology_untouched(self, medium_graph):
        g = assign_ic_weights(medium_graph, seed=3)
        assert np.array_equal(g.indices, medium_graph.indices)
        assert g.num_vertices == medium_graph.num_vertices

    def test_determinism(self, medium_graph):
        a = assign_ic_weights(medium_graph, seed=9)
        b = assign_ic_weights(medium_graph, seed=9)
        assert np.array_equal(a.probs, b.probs)

    def test_unknown_scheme_rejected(self, medium_graph):
        with pytest.raises(ParameterError):
            assign_ic_weights(medium_graph, scheme="nope")

    def test_bad_scale_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            assign_ic_weights(medium_graph, scale=1.5)


class TestLTWeights:
    def test_incoming_sums_at_most_one(self, medium_graph):
        g = assign_lt_weights(medium_graph, seed=1)
        sums = lt_incoming_weight_sums(g)
        assert np.all(sums <= 1.0 + 1e-9)

    def test_weights_nonnegative(self, medium_graph):
        g = assign_lt_weights(medium_graph, seed=1)
        assert np.all(g.probs >= 0.0)

    def test_slack_is_no_activation_probability(self, medium_graph):
        # The construction leaves strictly positive "activate nobody" mass
        # for almost all vertices (U[0,1] scaling).
        g = assign_lt_weights(medium_graph, seed=2)
        sums = lt_incoming_weight_sums(g)
        indeg = np.bincount(g.indices, minlength=g.num_vertices)
        assert (sums[indeg > 0] < 1.0).mean() > 0.95

    def test_total_incoming_cap(self, medium_graph):
        g = assign_lt_weights(medium_graph, seed=3, total_incoming=0.5)
        assert np.all(lt_incoming_weight_sums(g) <= 0.5 + 1e-9)

    def test_determinism(self, medium_graph):
        a = assign_lt_weights(medium_graph, seed=4)
        b = assign_lt_weights(medium_graph, seed=4)
        assert np.array_equal(a.probs, b.probs)

    def test_isolated_vertices_ok(self):
        g = from_edge_array(
            np.array([0]), np.array([1]), num_vertices=10
        )
        weighted = assign_lt_weights(g, seed=5)
        assert weighted.num_edges == 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_lt_constraint_random_seeds(self, seed):
        src, dst = erdos_renyi(60, 300, seed=seed)
        g = from_edge_array(src, dst, num_vertices=60)
        weighted = assign_lt_weights(g, seed=seed)
        assert np.all(lt_incoming_weight_sums(weighted) <= 1.0 + 1e-9)
