"""Tests for the replica dataset registry."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.weights import lt_incoming_weight_sums


class TestRegistry:
    def test_eight_datasets(self):
        assert len(DATASETS) == 8

    def test_names_match_paper_order(self):
        assert dataset_names() == [
            "amazon", "dblp", "youtube", "livejournal",
            "pokec", "skitter", "google", "twitter7",
        ]

    def test_specs_have_paper_stats(self):
        for spec in DATASETS.values():
            assert spec.paper_nodes > 0
            assert spec.paper_edges > spec.paper_nodes
            assert 0 < spec.paper_avg_coverage <= spec.paper_max_coverage <= 1

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("facebook")

    def test_paper_name_lookup(self):
        a = load_dataset("com-Amazon")
        b = load_dataset("amazon")
        assert a == b

    def test_unknown_model_rejected(self):
        with pytest.raises(DatasetError, match="unknown diffusion model"):
            load_dataset("amazon", model="SIR")


class TestMaterialisation:
    def test_determinism(self):
        a = load_dataset("dblp", seed=0)
        b = load_dataset("dblp", seed=0)
        assert a == b

    def test_seed_changes_instance(self):
        a = load_dataset("dblp", seed=0)
        b = load_dataset("dblp", seed=1)
        assert a != b

    def test_bare_topology_has_unit_probs(self):
        g = load_dataset("amazon")
        assert np.all(g.probs == 1.0)

    def test_ic_weights_uniform(self, amazon_ic):
        assert 0.35 < amazon_ic.probs.mean() < 0.65
        assert np.all((amazon_ic.probs >= 0) & (amazon_ic.probs <= 1))

    def test_lt_weights_constraint(self, amazon_lt):
        assert np.all(lt_incoming_weight_sums(amazon_lt) <= 1.0 + 1e-9)

    def test_scale_grows_graph(self):
        small = load_dataset("dblp", scale=0.5)
        big = load_dataset("dblp", scale=1.0)
        assert big.num_vertices > small.num_vertices

    def test_undirected_replicas_symmetric(self):
        g = load_dataset("amazon")
        edges = {(u, v) for u, v, _ in g.iter_edges()}
        assert all((v, u) in edges for u, v in edges)

    def test_skitter_is_dag(self):
        g = load_dataset("skitter")
        src, dst, _ = g.edge_array()
        assert np.all(src < dst)

    def test_cache_roundtrip(self, tmp_path):
        a = load_dataset("dblp", cache_dir=tmp_path)
        assert any(tmp_path.iterdir())
        b = load_dataset("dblp", cache_dir=tmp_path)
        assert a == b


class TestCoverageSignature:
    """The property the replicas exist to preserve (Table I)."""

    @pytest.mark.parametrize("name", dataset_names())
    def test_coverage_band(self, name):
        from repro.diffusion import get_model

        spec = DATASETS[name]
        g = load_dataset(name, model="IC", seed=0)
        model = get_model("IC", g)
        rng = np.random.default_rng(99)
        sizes = [
            model.reverse_sample(model.random_root(rng), rng).size
            for _ in range(30)
        ]
        avg_cov = np.mean(sizes) / g.num_vertices
        # Within a factor-2 band of the paper's measured average coverage
        # (skitter, the ~1% outlier, must stay the outlier).
        assert spec.paper_avg_coverage / 2.2 < avg_cov < spec.paper_avg_coverage * 2.2

    def test_skitter_is_the_low_coverage_outlier(self):
        from repro.diffusion import get_model

        covs = {}
        for name in ("skitter", "amazon", "google"):
            g = load_dataset(name, model="IC", seed=0)
            model = get_model("IC", g)
            rng = np.random.default_rng(5)
            sizes = [
                model.reverse_sample(model.random_root(rng), rng).size
                for _ in range(25)
            ]
            covs[name] = np.mean(sizes) / g.num_vertices
        assert covs["skitter"] < 0.1 * covs["amazon"]
        assert covs["skitter"] < 0.1 * covs["google"]
