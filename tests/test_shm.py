"""The shared-memory sketch plane: segments, views, lifecycle edge cases.

Covers the contracts docs/memory.md states:

- publish/attach round-trips are byte-identical (same fingerprint, same
  selection answers) and genuinely zero-copy (a byte poked into the
  segment is visible through an already-attached view);
- lifecycle edges: double close is a no-op, attach-after-unlink raises
  :class:`~repro.errors.ShmError`, a crashed child holding an attach
  cannot break the creator's cleanup, and the startup sweep removes a
  dead owner's orphans while leaving live ones alone;
- copy-on-write: mutating one view privatises it without perturbing the
  segment other views read;
- the integration paths: spawn-mode ``parallel_generate`` equals fork
  byte-for-byte, a sharded cluster over segments answers exactly like one
  without, and ``ArtifactStore.publish_sketch`` reuses a live segment on
  republish.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import shm
from repro.core.selection import efficient_select
from repro.errors import ShmError
from repro.shm.segments import open_segment, read_header
from repro.sketch.protocol import make_store

N = 60
SHM_DIR = Path("/dev/shm")


def _filled_store(seed=5, num_sets=40):
    rng = np.random.default_rng(seed)
    store = make_store("flat", num_vertices=N, sort_sets=True)
    store.extend(
        np.sort(
            rng.choice(N, size=int(rng.integers(1, 10)), replace=False)
        ).astype(np.int32)
        for _ in range(num_sets)
    )
    return store


@pytest.fixture
def mgr():
    m = shm.SegmentManager(prefix="tshm")
    yield m
    m.close()
    assert shm.list_segments("tshm") == []


# ------------------------------------------------------------------ round-trip
def test_store_round_trip_is_byte_identical(mgr):
    store = _filled_store()
    handle = mgr.publish_store(store)
    assert len(handle.name) <= 31  # POSIX portability limit
    assert handle.payload_bytes == store.offsets.nbytes + store.vertices.nbytes
    view = mgr.attach_store(handle)
    assert view.fingerprint() == store.fingerprint()
    np.testing.assert_array_equal(view.offsets, store.offsets)
    np.testing.assert_array_equal(view.vertices, store.vertices)
    assert not view.vertices.flags.writeable
    view.detach()


def test_graph_round_trip(mgr, diamond_graph):
    handle = mgr.publish_graph(diamond_graph)
    g = mgr.attach_graph(handle)
    assert g.num_vertices == diamond_graph.num_vertices
    np.testing.assert_array_equal(g.indptr, diamond_graph.indptr)
    np.testing.assert_array_equal(g.indices, diamond_graph.indices)
    np.testing.assert_array_equal(g.probs, diamond_graph.probs)
    g.detach()
    assert g.detached


def test_attached_view_sees_segment_bytes(mgr):
    """Zero-copy proof: a byte poked into the raw segment shows up in a
    view that was attached *before* the poke."""
    store = _filled_store()
    handle = mgr.publish_store(store)
    view = mgr.attach_store(handle)
    raw = open_segment(handle.name)
    try:
        header = read_header(raw)
        spec = next(s for s in header["arrays"] if s["name"] == "vertices")
        old = view.vertices[0]
        poked = np.array([int(old) + 1], dtype=np.int32)
        raw.buf[spec["offset"] : spec["offset"] + 4] = poked.tobytes()
        assert view.vertices[0] == old + 1
        raw.buf[spec["offset"] : spec["offset"] + 4] = np.array(
            [old], dtype=np.int32
        ).tobytes()
    finally:
        raw.close()
        view.detach()


def test_publish_is_idempotent_per_fingerprint(mgr):
    store = _filled_store()
    h1 = mgr.publish_store(store)
    h2 = mgr.publish_store(store)
    assert h1 is h2
    assert mgr.handle_for(store.fingerprint()) == h1
    assert mgr.has_store(store.fingerprint())
    assert mgr.handle_for("0" * 16) is None


def test_partitioned_store_flattens_on_publish(mgr):
    part = make_store("partitioned", num_vertices=N, num_workers=3, sort_sets=True)
    rng = np.random.default_rng(9)
    for w in range(3):
        for _ in range(5):
            part.append(
                w,
                np.sort(rng.choice(N, size=4, replace=False)).astype(np.int32),
            )
    view = mgr.attach_store(mgr.publish_store(part))
    assert view.fingerprint() == part.fingerprint()
    assert len(view) == len(part)
    view.detach()


def test_selection_identical_over_shared_view(mgr):
    store = _filled_store(seed=13, num_sets=80)
    view = mgr.attach_store(mgr.publish_store(store))
    a = efficient_select(store, 5)
    b = efficient_select(view, 5)
    np.testing.assert_array_equal(a.seeds, b.seeds)
    view.detach()


# --------------------------------------------------------------- copy-on-write
def test_mutation_privatises_without_touching_other_views(mgr):
    store = _filled_store()
    handle = mgr.publish_store(store)
    writer = mgr.attach_store(handle)
    reader = mgr.attach_store(handle)
    n0 = len(reader)
    writer.append(np.array([1, 2, 3], dtype=np.int32))
    assert len(writer) == n0 + 1
    assert len(reader) == n0  # untouched
    assert reader.fingerprint() == store.fingerprint()
    writer.detach()
    reader.detach()
    assert mgr.leaked() == []


def test_replace_sets_is_cow(mgr):
    store = _filled_store()
    handle = mgr.publish_store(store)
    writer = mgr.attach_store(handle)
    reader = mgr.attach_store(handle)
    writer.replace_sets(
        np.array([0], dtype=np.int64), [np.array([7], dtype=np.int32)]
    )
    np.testing.assert_array_equal(writer.get(0), [7])
    np.testing.assert_array_equal(reader.get(0), store.get(0))
    writer.detach()
    reader.detach()


# ------------------------------------------------------------- lifecycle edges
def test_double_close_and_double_detach_are_noops():
    m = shm.SegmentManager(prefix="tdc")
    view = m.attach_store(m.publish_store(_filled_store()))
    view.detach()
    view.detach()  # idempotent
    assert view.detached
    m.close()
    m.close()  # idempotent
    assert shm.list_segments("tdc") == []


def test_closed_manager_rejects_further_use():
    m = shm.SegmentManager(prefix="tcl")
    m.close()
    with pytest.raises(ShmError, match="closed"):
        m.publish_store(_filled_store())
    with pytest.raises(ShmError, match="closed"):
        m.attach_store("tcl-feedfeedfeedfeed-1")


def test_attach_after_unlink_raises_shm_error():
    m = shm.SegmentManager(prefix="tau")
    handle = m.publish_store(_filled_store())
    m.close()
    with pytest.raises(ShmError, match="not found"):
        shm.attach_store(handle)


def test_mutating_a_detached_view_raises():
    with shm.SegmentManager(prefix="tdm") as m:
        view = m.attach_store(m.publish_store(_filled_store()))
        view.detach()
        with pytest.raises(ShmError, match="detached"):
            view.append(np.array([1], dtype=np.int32))


def test_leak_detector_reports_undetached_views():
    m = shm.SegmentManager(prefix="tlk")
    handle = m.publish_store(_filled_store())
    view = m.attach_store(handle)
    assert m.leaked() == [handle.name]
    view.detach()
    assert m.leaked() == []
    m.close()


def test_invalid_prefix_rejected():
    for bad in ("", "a-b", "a/b"):
        with pytest.raises(ShmError, match="invalid segment prefix"):
            shm.SegmentManager(prefix=bad)


def test_wrong_kind_attach_rejected(mgr, diamond_graph):
    h_graph = mgr.publish_graph(diamond_graph)
    with pytest.raises(ShmError, match="holds kind"):
        mgr.attach_store(h_graph)


@pytest.mark.skipif(not SHM_DIR.is_dir(), reason="needs /dev/shm")
def test_orphan_sweep_removes_dead_owners_only():
    # A genuinely dead pid: a shell that has already exited.
    proc = subprocess.run(
        ["sh", "-c", "echo $$"], capture_output=True, text=True, check=True
    )
    dead_pid = int(proc.stdout.strip())
    orphan = SHM_DIR / f"tsw-{'ab' * 8}-{dead_pid:x}"
    orphan.write_bytes(b"\0" * 64)
    live = SHM_DIR / f"tsw-{'cd' * 8}-{os.getpid():x}"
    live.write_bytes(b"\0" * 64)
    try:
        removed = shm.sweep_orphans("tsw")
        assert orphan.name in removed
        assert not orphan.exists()
        assert live.exists()  # live owner's segment untouched
    finally:
        orphan.unlink(missing_ok=True)
        live.unlink(missing_ok=True)


def _crash_holding_attach(name):
    view = shm.attach_store(name)
    assert len(view) > 0
    os._exit(0)  # simulate a crash: no detach, no cleanup


@pytest.mark.skipif(not SHM_DIR.is_dir(), reason="needs /dev/shm")
def test_child_crash_holding_attach_does_not_break_creator():
    m = shm.SegmentManager(prefix="tcc")
    handle = m.publish_store(_filled_store())
    ctx = multiprocessing.get_context("fork")
    p = ctx.Process(target=_crash_holding_attach, args=(handle.name,))
    p.start()
    p.join(timeout=30)
    assert p.exitcode == 0
    # The crashed attacher must not have unlinked the creator's segment...
    assert handle.name in shm.list_segments("tcc")
    view = m.attach_store(handle)
    assert view.fingerprint()
    view.detach()
    # ...and the creator's close still reclaims it.
    m.close()
    assert shm.list_segments("tcc") == []


def test_fork_inherited_manager_never_unlinks():
    m = shm.SegmentManager(prefix="tfk")
    handle = m.publish_store(_filled_store())
    ctx = multiprocessing.get_context("fork")
    p = ctx.Process(target=lambda mm: mm.close(), args=(m,))
    p.start()
    p.join(timeout=30)
    assert p.exitcode == 0
    assert handle.name in shm.list_segments("tfk")  # child close() = bookkeeping only
    m.close()
    assert shm.list_segments("tfk") == []


# ----------------------------------------------------------------- integration
def test_spawn_parallel_generate_matches_fork(amazon_ic):
    from repro.core.parallel_sampling import parallel_generate

    fork_store = parallel_generate(
        amazon_ic, "IC", 60, num_workers=2, seed=3, start_method="fork"
    )
    spawn_store = parallel_generate(
        amazon_ic, "IC", 60, num_workers=2, seed=3, start_method="spawn"
    )
    assert spawn_store.fingerprint() == fork_store.fingerprint()
    np.testing.assert_array_equal(spawn_store.offsets, fork_store.offsets)
    np.testing.assert_array_equal(spawn_store.vertices, fork_store.vertices)
    assert shm.list_segments() == []  # the call unlinked its graph segment


def test_shard_cluster_over_segments_matches_baseline():
    from repro.service.engine import EngineConfig
    from repro.service.protocol import IMQuery
    from repro.shard.cluster import ShardCluster
    from repro.shard.plan import ShardPlan
    from repro.shard.worker import SketchSpec

    spec = SketchSpec(
        dataset="skitter", model="IC", epsilon=0.5, seed=0, num_sets=200
    )
    query = IMQuery(
        dataset="skitter", model="IC", k=8, epsilon=0.5, seed=0, theta_cap=200
    )
    cfg = EngineConfig(persist=False)
    plan = ShardPlan(num_shards=2, replication=2)

    with ShardCluster(plan, engine_config=cfg) as base:
        base.build(spec)
        expected = base.query(query)

    m = shm.SegmentManager(prefix="tcs")
    with ShardCluster(plan, engine_config=cfg, segment_manager=m) as clus:
        summary = clus.build(spec)
        assert all(row["segment"] for row in summary["shards"])
        got = clus.query(query)
        # 2 shards x 2 replicas each hold one zero-copy view.
        assert sum(w.stats.shm_attaches for w in clus.workers) == 4
    assert got.seeds == expected.seeds
    assert m.leaked() == []  # worker close detached every view
    m.close()
    assert shm.list_segments("tcs") == []


def test_artifact_publish_sketch_round_trip(tmp_path):
    from repro.service.artifacts import ArtifactStore

    store = _filled_store(seed=21, num_sets=50)
    arts = ArtifactStore(tmp_path)
    fp = "feedfacefeedface"
    arts.save_sketch(fp, store, counter=store.vertex_counts(), meta={"model": "IC"})
    with shm.SegmentManager(prefix="tap") as m:
        handle, counter, meta = arts.publish_sketch(fp, m)
        assert meta["model"] == "IC"
        np.testing.assert_array_equal(counter, store.vertex_counts())
        view = m.attach_store(handle)
        assert view.fingerprint() == store.fingerprint()
        view.detach()
        # Republish of a live fingerprint reuses the segment, no new copy.
        h2, _, _ = arts.publish_sketch(fp, m)
        assert h2.name == handle.name
