"""Tests for structural graph analysis (SCC/WCC, degrees, Tarjan)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.properties import (
    degree_stats,
    largest_component_fraction,
    strongly_connected_components,
    tarjan_scc,
    weakly_connected_components,
)

from conftest import make_graph


class TestSCC:
    def test_cycle_is_one_scc(self, cycle_graph):
        count, labels = strongly_connected_components(cycle_graph)
        assert count == 1
        assert len(set(labels.tolist())) == 1

    def test_line_is_all_singletons(self, line_graph):
        count, _ = strongly_connected_components(line_graph)
        assert count == 5

    def test_two_triangles(self, two_triangles):
        count, labels = strongly_connected_components(two_triangles)
        assert count == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_empty_graph(self, empty_graph):
        count, labels = strongly_connected_components(empty_graph)
        assert count == 0 and labels.size == 0


class TestWCC:
    def test_line_is_one_wcc(self, line_graph):
        count, _ = weakly_connected_components(line_graph)
        assert count == 1

    def test_two_triangles_two_wcc(self, two_triangles):
        count, _ = weakly_connected_components(two_triangles)
        assert count == 2


class TestLargestComponentFraction:
    def test_cycle_full(self, cycle_graph):
        assert largest_component_fraction(cycle_graph) == 1.0

    def test_line_weak_full(self, line_graph):
        assert largest_component_fraction(line_graph, strong=False) == 1.0

    def test_line_strong_small(self, line_graph):
        assert largest_component_fraction(line_graph, strong=True) == 1 / 5

    def test_empty(self, empty_graph):
        assert largest_component_fraction(empty_graph) == 0.0


class TestDegreeStats:
    def test_star_out(self, star_graph):
        stats = degree_stats(star_graph, direction="out")
        assert stats.maximum == 8
        assert stats.mean == pytest.approx(8 / 9)

    def test_star_in(self, star_graph):
        stats = degree_stats(star_graph, direction="in")
        assert stats.maximum == 1

    def test_star_is_skewed(self):
        g = make_graph([(0, i, 1.0) for i in range(1, 200)], n=200)
        assert degree_stats(g).skewed

    def test_regular_not_skewed(self, cycle_graph):
        assert not degree_stats(cycle_graph).skewed

    def test_gini_zero_for_regular(self, cycle_graph):
        assert degree_stats(cycle_graph).gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_high_for_star(self, star_graph):
        assert degree_stats(star_graph).gini > 0.8

    def test_rejects_bad_direction(self, star_graph):
        with pytest.raises(ValueError):
            degree_stats(star_graph, direction="sideways")

    def test_empty(self, empty_graph):
        s = degree_stats(empty_graph)
        assert s.mean == 0.0 and s.maximum == 0


class TestTarjanAgreesWithScipy:
    def _labels_to_partition(self, labels):
        part = {}
        for v, c in enumerate(labels.tolist()):
            part.setdefault(c, set()).add(v)
        return {frozenset(s) for s in part.values()}

    def test_fixed_graphs(self, cycle_graph, line_graph, two_triangles):
        for g in (cycle_graph, line_graph, two_triangles):
            _, scipy_labels = strongly_connected_components(g)
            ours = tarjan_scc(g)
            assert self._labels_to_partition(ours) == self._labels_to_partition(
                scipy_labels
            )

    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed):
        src, dst = erdos_renyi(40, 120, seed=seed)
        g = from_edge_array(src, dst, num_vertices=40)
        _, scipy_labels = strongly_connected_components(g)
        ours = tarjan_scc(g)
        assert self._labels_to_partition(ours) == self._labels_to_partition(
            scipy_labels
        )

    def test_deep_graph_no_recursion_limit(self):
        # 5000-vertex path: a recursive Tarjan would blow the stack.
        n = 5000
        g = make_graph([(i, i + 1, 1.0) for i in range(n - 1)], n=n)
        labels = tarjan_scc(g)
        assert len(set(labels.tolist())) == n
