"""Tests for machine topology descriptions."""

import pytest

from repro.errors import ParameterError
from repro.simmachine.topology import (
    CacheGeometry,
    MachineTopology,
    perlmutter,
    ripples_testbed,
)


class TestCacheGeometry:
    def test_num_sets(self):
        g = CacheGeometry(32 * 1024, ways=8, line_bytes=64)
        assert g.num_sets == 64

    def test_rejects_nonmultiple_size(self):
        with pytest.raises(ParameterError):
            CacheGeometry(1000, ways=8, line_bytes=64)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            CacheGeometry(0, ways=8)


class TestPerlmutter:
    def test_counts(self):
        t = perlmutter()
        assert t.num_numa_nodes == 8
        assert t.num_cores == 128
        assert t.sockets == 2

    def test_node_of_core(self):
        t = perlmutter()
        assert t.node_of_core(0) == 0
        assert t.node_of_core(15) == 0
        assert t.node_of_core(16) == 1
        assert t.node_of_core(127) == 7

    def test_node_of_core_out_of_range(self):
        with pytest.raises(ParameterError):
            perlmutter().node_of_core(128)

    def test_socket_of_node(self):
        t = perlmutter()
        assert t.socket_of_node(3) == 0
        assert t.socket_of_node(4) == 1

    def test_latency_ordering(self):
        t = perlmutter()
        local = t.access_latency_ns(0, 0)
        same_socket = t.access_latency_ns(0, 1)
        cross = t.access_latency_ns(0, 7)
        assert local < same_socket < cross

    def test_active_nodes_packed(self):
        t = perlmutter()
        assert t.active_nodes(1) == 1
        assert t.active_nodes(16) == 1
        assert t.active_nodes(17) == 2
        assert t.active_nodes(128) == 8

    def test_cores_for_threads(self):
        t = perlmutter()
        assert t.cores_for_threads(3) == [0, 1, 2]
        with pytest.raises(ParameterError):
            t.cores_for_threads(129)


class TestRipplesTestbed:
    def test_uniform_memory(self):
        t = ripples_testbed()
        assert t.num_numa_nodes == 1
        assert t.access_latency_ns(0, 0) == t.dram_local_ns

    def test_ten_cores(self):
        assert ripples_testbed().num_cores == 10
