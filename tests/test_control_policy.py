"""Unit tests for repro.control.policy: every policy is deterministic,
sample-in actions-out, and damped (hysteresis, cooldown, quarantine).

The samples here are hand-written fixtures — no cluster, no gateway —
which is exactly the property the policies are designed around.
"""

from __future__ import annotations

import pytest

from repro.control import (
    AdmissionConfig,
    AdmissionPolicy,
    AutoscaleConfig,
    AutoscalePolicy,
    HealthSample,
    ReplicaHealth,
    SelfHealConfig,
    SelfHealPolicy,
)
from repro.errors import ParameterError


def sample(
    *,
    shards=1,
    replication=1,
    p99=0.0,
    shed=0.0,
    queue_depth=0,
    queue_capacity=0,
    dead=(),
    shed_by_cause=None,
    sketch_bytes=0,
    segment_bytes=0,
):
    replicas = tuple(
        ReplicaHealth(
            name=f"s{s}r{r}", shard=s, replica=r, dead=(s, r) in set(dead)
        )
        for s in range(shards)
        for r in range(replication)
    )
    return HealthSample(
        ts=0.0,
        num_shards=shards,
        replicas=replicas,
        queue_depth=queue_depth,
        queue_capacity=queue_capacity,
        shed_rate=shed,
        shed_by_cause=dict(shed_by_cause or {}),
        p99_latency_s=p99,
        sketch_bytes=sketch_bytes,
        segment_bytes=segment_bytes,
        source="fixture",
    )


BREACH = dict(p99=1.0)
IDLE = dict(p99=0.0)


class TestAutoscalePolicy:
    def make(self, **kw):
        kw.setdefault("p99_slo_s", 0.5)
        kw.setdefault("breach_ticks", 3)
        kw.setdefault("idle_ticks", 2)
        kw.setdefault("cooldown_ticks", 0)
        kw.setdefault("max_replicas", 4)
        return AutoscalePolicy(AutoscaleConfig(**kw))

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            AutoscaleConfig(p99_slo_s=0)
        with pytest.raises(ParameterError):
            AutoscaleConfig(breach_ticks=0)
        with pytest.raises(ParameterError):
            AutoscaleConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ParameterError):
            AutoscaleConfig(idle_fraction=1.0)

    def test_hysteresis_requires_consecutive_breaches(self):
        p = self.make()
        assert p.propose(sample(**BREACH), 0) == []
        assert p.propose(sample(**BREACH), 1) == []
        # A single healthy tick resets the streak.
        assert p.propose(sample(p99=0.1), 2) == []
        assert p.propose(sample(**BREACH), 3) == []
        assert p.propose(sample(**BREACH), 4) == []
        [action] = p.propose(sample(**BREACH), 5)
        assert action.kind == "scale_up" and action.params == {"to": 2}

    def test_shed_rate_alone_is_a_breach(self):
        p = self.make(breach_ticks=1, shed_rate_slo=1.0)
        [action] = p.propose(sample(shed=5.0), 0)
        assert action.kind == "scale_up"

    def test_cooldown_blocks_consecutive_scale_events(self):
        p = self.make(breach_ticks=1, cooldown_ticks=3)
        assert p.propose(sample(**BREACH), 0)[0].kind == "scale_up"
        assert p.propose(sample(**BREACH), 1) == []
        assert p.propose(sample(**BREACH), 2) == []
        # Cooldown over; the breach streak re-accumulated meanwhile.
        assert p.propose(sample(**BREACH), 3)[0].kind == "scale_up"

    def test_max_replicas_is_a_hard_ceiling(self):
        p = self.make(breach_ticks=1, max_replicas=2)
        assert p.propose(sample(replication=2, **BREACH), 0) == []

    def test_memory_budget_blocks_scale_up(self):
        p = self.make(breach_ticks=1, memory_budget_bytes=100)
        assert (
            p.propose(sample(sketch_bytes=80, segment_bytes=40, **BREACH), 0)
            == []
        )
        assert p.blocked_by_memory == 1
        # Under budget the same breach scales.
        p2 = self.make(breach_ticks=1, memory_budget_bytes=10_000)
        [action] = p2.propose(
            sample(sketch_bytes=80, segment_bytes=40, **BREACH), 0
        )
        assert action.kind == "scale_up"

    def test_idle_scales_down_but_not_below_min(self):
        p = self.make(min_replicas=1)
        assert p.propose(sample(replication=2, **IDLE), 0) == []
        [action] = p.propose(sample(replication=2, **IDLE), 1)
        assert action.kind == "scale_down" and action.params == {"to": 1}
        # At the floor, idleness never proposes anything.
        p2 = self.make(min_replicas=1)
        for t in range(6):
            assert p2.propose(sample(replication=1, **IDLE), t) == []

    def test_idle_requires_empty_queue_and_no_sheds(self):
        p = self.make()
        for t in range(5):
            assert p.propose(sample(replication=2, queue_depth=3), t) == []
        assert p._idle_ticks == 0

    def test_no_replicas_means_no_actions(self):
        p = self.make(breach_ticks=1)
        assert p.propose(sample(shards=0, replication=0, **BREACH), 0) == []


class TestSelfHealPolicy:
    def test_revives_dead_replicas(self):
        p = SelfHealPolicy()
        [action] = p.propose(sample(replication=2, dead=[(0, 1)]), 0)
        assert action.kind == "revive"
        assert action.target == "s0r1"
        assert action.params == {"shard": 0, "replica": 1}

    def test_flapping_replica_is_quarantined_once(self):
        p = SelfHealPolicy(SelfHealConfig(flap_window_ticks=10, flap_threshold=3))
        dead = sample(replication=2, dead=[(0, 1)])
        for t in range(3):
            [action] = p.propose(dead, t)
            assert action.kind == "revive"
        [action] = p.propose(dead, 3)
        assert action.kind == "quarantine" and action.target == "s0r1"
        assert p.quarantined == frozenset({"s0r1"})
        # Quarantine is one-shot: afterwards the replica is ignored.
        assert p.propose(dead, 4) == []

    def test_release_reenables_revival(self):
        p = SelfHealPolicy(SelfHealConfig(flap_window_ticks=10, flap_threshold=1))
        dead = sample(dead=[(0, 0)])
        assert p.propose(dead, 0)[0].kind == "revive"
        assert p.propose(dead, 1)[0].kind == "quarantine"
        assert p.release("s0r0") is True
        assert p.release("s0r0") is False  # already released
        assert p.propose(dead, 2)[0].kind == "revive"

    def test_old_revives_age_out_of_the_window(self):
        p = SelfHealPolicy(SelfHealConfig(flap_window_ticks=5, flap_threshold=2))
        dead = sample(dead=[(0, 0)])
        assert p.propose(dead, 0)[0].kind == "revive"
        # 10 ticks later the earlier revive no longer counts as flapping.
        assert p.propose(dead, 10)[0].kind == "revive"
        assert p.quarantined == frozenset()


class TestAdmissionPolicy:
    def make(self, **kw):
        kw.setdefault("min_queue_depth", 4)
        kw.setdefault("max_queue_depth", 64)
        kw.setdefault("breach_ticks", 2)
        kw.setdefault("relax_ticks", 2)
        return AdmissionPolicy(AdmissionConfig(**kw))

    def test_no_gateway_no_actions(self):
        p = self.make()
        assert p.propose(sample(queue_capacity=0), 0) == []

    def test_sustained_queue_full_grows_depth_bounded(self):
        p = self.make()
        full = sample(
            queue_capacity=48, shed=2.0, shed_by_cause={"queue_full": 2.0}
        )
        assert p.propose(full, 0) == []
        [action] = p.propose(full, 1)
        assert action.kind == "tune_admission" and action.target == "gateway"
        assert action.params == {"queue_depth": 64}  # capped at max, not 96

    def test_at_max_depth_growth_stops(self):
        p = self.make()
        full = sample(
            queue_capacity=64, shed=2.0, shed_by_cause={"queue_full": 2.0}
        )
        for t in range(4):
            assert p.propose(full, t) == []

    def test_calm_shrinks_back_toward_the_floor(self):
        p = self.make()
        calm = sample(queue_capacity=64)
        assert p.propose(calm, 0) == []
        [action] = p.propose(calm, 1)
        assert action.params == {"queue_depth": 32}
        # At the floor nothing shrinks further.
        p2 = self.make()
        floor = sample(queue_capacity=4)
        for t in range(4):
            assert p2.propose(floor, t) == []

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            AdmissionConfig(min_queue_depth=10, max_queue_depth=5)
        with pytest.raises(ParameterError):
            AdmissionConfig(grow_factor=1.0)
        with pytest.raises(ParameterError):
            AdmissionConfig(breach_ticks=0)
