"""Edge cases for the runtime substrate: empty/degenerate work queues,
failing tasks, backend teardown safety, and telemetry merge across forked
workers (ISSUE 1, satellite c)."""

import numpy as np
import pytest

from repro import telemetry
from repro.errors import BackendError
from repro.runtime.api import BackendConfig
from repro.runtime.backends import MultiprocessBackend, SerialBackend, make_backend
from repro.runtime.workqueue import ChunkedWorkQueue, simulate_schedule


# ----------------------------------------------------------- workqueue edges
class TestWorkQueueEdges:
    def test_empty_task_list(self):
        q = ChunkedWorkQueue(0, num_workers=3, chunk_size=4)
        assert q.remaining() == 0
        assert q.pop(0) is None and q.pop(2) is None
        assert q.steals == 0 and q.pops == 0

    def test_single_task(self):
        q = ChunkedWorkQueue(1, num_workers=4, chunk_size=8)
        assert q.remaining() == 1
        # Only worker 0's queue holds the lone chunk; any popper gets it.
        assert q.pop(3) == (0, 1)
        assert q.steals == 1  # worker 3 had to steal it
        assert q.pop(0) is None
        assert q.remaining() == 0

    def test_fewer_chunks_than_workers(self):
        q = ChunkedWorkQueue(3, num_workers=8, chunk_size=2)
        got = [q.pop(w) for w in range(8)]
        ranges = [c for c in got if c is not None]
        assert sorted(ranges) == [(0, 2), (2, 3)]

    def test_task_raising_mid_queue_leaves_queue_consistent(self):
        """A consumer crashing mid-drain must not corrupt the queue: the
        remaining chunks stay poppable by other workers, exactly once."""
        q = ChunkedWorkQueue(12, num_workers=2, chunk_size=2)

        def drain(worker, fail_after):
            done = []
            while (c := q.pop(worker)) is not None:
                if len(done) == fail_after:
                    raise RuntimeError("boom")
                done.append(c)
            return done

        with pytest.raises(RuntimeError):
            drain(0, fail_after=1)
        # Worker 0 consumed 1 chunk and crashed holding a 2nd; worker 1
        # drains everything left.
        survivors = drain(1, fail_after=99)
        assert q.remaining() == 0
        # 6 chunks total: 1 done by w0, 1 lost in the crash, 4 to w1.
        assert len(survivors) == 4
        covered = sorted(i for lo, hi in survivors for i in range(lo, hi))
        assert len(covered) == len(set(covered)) == 8

    def test_simulate_schedule_single_item(self):
        r = simulate_schedule(np.array([5.0]), 4, policy="dynamic")
        assert r.makespan == 5.0
        assert r.loads.sum() == 5.0


# ------------------------------------------------------------- backend edges
def _square(x):
    return x * x


def _boom(x):
    if x == 2:
        raise ValueError(f"task {x} failed")
    return x


def _count_one(x):
    tel = telemetry.get()
    if tel.enabled:
        tel.registry.counter("edge.worker_calls").inc()
        tel.registry.histogram("edge.task_value").observe(float(x))
    return x


class TestBackendEdges:
    def test_empty_tasks_serial_and_multiprocess(self):
        assert SerialBackend().run_tasks(_square, []) == []
        with MultiprocessBackend(1) as b:
            assert b.run_tasks(_square, []) == []

    def test_single_task(self):
        with MultiprocessBackend(2) as b:
            assert b.run_tasks(_square, [7]) == [49]

    def test_close_safe_after_worker_exception(self):
        b = MultiprocessBackend(2)
        with pytest.raises(ValueError, match="task 2 failed"):
            b.run_tasks(_boom, [0, 1, 2, 3])
        b.close()  # must not raise
        b.close()  # and stays idempotent
        with pytest.raises(BackendError):
            b.run_tasks(_square, [1])

    def test_context_manager_propagates_worker_exception(self):
        with pytest.raises(ValueError, match="task 2 failed"):
            with MultiprocessBackend(2) as b:
                b.run_tasks(_boom, [2])

    def test_failure_counted_when_telemetry_on(self):
        with telemetry.session() as tel:
            with MultiprocessBackend(2) as b:
                with pytest.raises(ValueError):
                    b.run_tasks(_boom, [1, 2])
        assert tel.snapshot()["counters"]["runtime.task_failures"] == 1.0

    def test_make_backend_validates_num_workers(self):
        for bad in (0, -1, -7):
            with pytest.raises(BackendError, match="num_workers"):
                make_backend(BackendConfig(backend="serial", num_workers=bad))
            with pytest.raises(BackendError, match="num_workers"):
                make_backend(BackendConfig(backend="multiprocess", num_workers=bad))
        # None means "pick a default" and stays valid for both.
        make_backend(BackendConfig(backend="serial")).close()
        b = make_backend(BackendConfig(backend="multiprocess", num_workers=1))
        assert b.num_workers == 1
        b.close()


# ---------------------------------------------- merge across forked workers
class TestForkedTelemetryMerge:
    def test_worker_deltas_merge_into_parent(self):
        with telemetry.session() as tel:
            with MultiprocessBackend(3) as b:
                out = b.run_tasks(_count_one, list(range(10)))
        assert out == list(range(10))
        snap = tel.snapshot()
        # Each forked task incremented a worker-local counter; the deltas
        # shipped back with the results and merged at reduce time.
        assert snap["counters"]["edge.worker_calls"] == 10.0
        assert snap["histograms"]["edge.task_value"]["count"] == 10
        assert snap["histograms"]["edge.task_value"]["sum"] == pytest.approx(45.0)
        assert snap["counters"]["runtime.tasks"] == 10.0
        assert snap["gauges"]["runtime.num_workers"] == 3.0

    def test_serial_backend_matches_multiprocess_totals(self):
        with telemetry.session() as ser:
            SerialBackend().run_tasks(_count_one, list(range(10)))
        with telemetry.session() as mp:
            with MultiprocessBackend(2) as b:
                b.run_tasks(_count_one, list(range(10)))
        s, m = ser.snapshot(), mp.snapshot()
        assert (
            s["counters"]["edge.worker_calls"]
            == m["counters"]["edge.worker_calls"]
            == 10.0
        )
        assert (
            s["histograms"]["edge.task_value"]["count"]
            == m["histograms"]["edge.task_value"]["count"]
        )
