"""Equivalence suite for :mod:`repro.kernels`.

The batched kernel's contract is *byte-identity*: the same ``(seed, set
index)`` always yields the same RRR set, no matter which kernel ran, how
sets were batched, how many workers drew them, or which process start
method launched those workers.  These tests prove the contract on adversarial
graph shapes (disconnected components, self-loops, zero-probability edges)
and all the integration seams (RRRSampler, parallel_generate, run_imm).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.core.efficientimm import EfficientIMM
from repro.core.params import IMMParams
from repro.core.parallel_sampling import parallel_generate
from repro.core.sampling import RRRSampler, SamplingConfig
from repro.diffusion.base import get_model
from repro.errors import ParameterError
from repro.graph.builder import GraphBuilder, from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.weights import assign_ic_weights, assign_lt_weights
from repro.kernels import (
    KernelSampler,
    check_kernel,
    coin_key,
    counter_uniforms,
    derive_key,
    derive_keys,
    roots_for_indices,
    sample_batched,
    sample_scalar,
)
from repro.runtime.backends import SerialBackend

BATCHES = (1, 7, 64)


def random_graph(model="IC", n=300, m=1200, seed=7):
    src, dst = erdos_renyi(n, m, seed=seed)
    g = from_edge_array(src, dst, num_vertices=n)
    if model == "IC":
        return assign_ic_weights(g, scheme="uniform", seed=1, scale=0.4)
    return assign_lt_weights(g, seed=1)


def disconnected_graph(model="IC"):
    """Two components plus isolated vertices 20..29."""
    edges = [(i, (i + 1) % 10, 0.7) for i in range(10)]
    edges += [(10 + i, 10 + ((i + 1) % 10), 0.3) for i in range(10)]
    src, dst, p = map(np.asarray, zip(*edges))
    g = from_edge_array(src, dst, p.astype(float), num_vertices=30)
    return g if model == "IC" else assign_lt_weights(g, seed=2)


def self_loop_graph(model="IC"):
    """A ring where every vertex also carries a self-loop."""
    b = GraphBuilder(relabel=False, drop_self_loops=False)
    for i in range(12):
        b.add_edge(i, (i + 1) % 12, 0.6)
        b.add_edge(i, i, 0.9)
    g = b.build(num_vertices=12)
    return g if model == "IC" else assign_lt_weights(g, seed=3)


def zero_prob_graph(model="IC"):
    """A chain whose middle edge can never fire (p = 0)."""
    edges = [(0, 1, 1.0), (1, 2, 0.0), (2, 3, 1.0), (3, 4, 0.5)]
    src, dst, p = map(np.asarray, zip(*edges))
    g = from_edge_array(src, dst, p.astype(float), num_vertices=5)
    return g if model == "IC" else g  # LT normalises rows; keep IC-only


GRAPH_MAKERS = {
    "random": random_graph,
    "disconnected": disconnected_graph,
    "self_loop": self_loop_graph,
}


def draws_for(graph, seed=11, count=150):
    indices = np.arange(count, dtype=np.int64)
    roots = roots_for_indices(seed, indices, graph.num_vertices)
    keys = derive_keys(coin_key(seed), indices)
    return roots, keys


def assert_same_draws(a, b):
    fa, sa, ea = a
    fb, sb, eb = b
    np.testing.assert_array_equal(sa, sb)
    np.testing.assert_array_equal(fa, fb)
    np.testing.assert_array_equal(ea, eb)


# ------------------------------------------------------------- RNG streams
class TestCounterStreams:
    def test_uniforms_deterministic_and_in_range(self):
        key = derive_key(42, 1)
        u1 = counter_uniforms(key, np.arange(1000))
        u2 = counter_uniforms(key, np.arange(1000))
        np.testing.assert_array_equal(u1, u2)
        assert np.all((u1 >= 0.0) & (u1 < 1.0))
        # A counter stream should not be visibly degenerate.
        assert 0.4 < u1.mean() < 0.6

    def test_keys_disjoint_across_domains_and_indices(self):
        idx = np.arange(64)
        a = derive_keys(coin_key(0), idx)
        b = derive_keys(derive_key(0, 1), idx)
        assert np.unique(a).size == idx.size
        assert not np.intersect1d(a, b).size

    def test_roots_uniform_and_in_range(self):
        roots = roots_for_indices(3, np.arange(5000), 17)
        assert roots.min() >= 0 and roots.max() < 17
        assert np.unique(roots).size == 17

    def test_seed_changes_everything(self):
        g = random_graph()
        model = get_model("IC", g)
        a = sample_batched(model, *draws_for(g, seed=1))
        b = sample_batched(model, *draws_for(g, seed=2))
        assert not (
            a[1].shape == b[1].shape
            and np.array_equal(a[1], b[1])
            and np.array_equal(a[0], b[0])
        )


# --------------------------------------------------- scalar <-> batched
class TestKernelEquivalence:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_MAKERS))
    @pytest.mark.parametrize("model_name", ("IC", "LT"))
    @pytest.mark.parametrize("batch", BATCHES)
    def test_batched_matches_scalar(self, graph_name, model_name, batch):
        g = GRAPH_MAKERS[graph_name](model_name)
        model = get_model(model_name, g)
        roots, keys = draws_for(g)
        ref = sample_scalar(get_model(model_name, g), roots, keys)
        got = sample_batched(model, roots, keys, batch_size=batch)
        assert_same_draws(ref, got)

    def test_zero_prob_edge_never_crossed(self):
        g = zero_prob_graph()
        model = get_model("IC", g)
        roots, keys = draws_for(g, count=400)
        flat, sizes, _ = sample_batched(model, roots, keys)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        for i in range(sizes.size):
            members = set(flat[offsets[i] : offsets[i + 1]].tolist())
            # Reverse BFS from roots >= 2 must stop at vertex 2: the only
            # in-edge of 2 is (1, 2) with p = 0.
            if roots[i] >= 2:
                assert not members & {0, 1}
        assert_same_draws(
            sample_scalar(get_model("IC", g), roots, keys),
            sample_batched(get_model("IC", g), roots, keys, batch_size=7),
        )

    def test_self_loops_terminate_with_unique_members(self):
        g = self_loop_graph()
        model = get_model("IC", g)
        roots, keys = draws_for(g, count=100)
        flat, sizes, _ = sample_batched(model, roots, keys)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        for i in range(sizes.size):
            members = flat[offsets[i] : offsets[i + 1]]
            assert np.unique(members).size == members.size

    def test_isolated_root_is_singleton(self):
        g = disconnected_graph()
        model = get_model("IC", g)
        roots = np.array([25, 27], dtype=np.int64)  # isolated vertices
        keys = derive_keys(coin_key(0), np.array([0, 1]))
        flat, sizes, edges = sample_batched(model, roots, keys)
        np.testing.assert_array_equal(sizes, [1, 1])
        np.testing.assert_array_equal(flat, roots.astype(np.int32))
        assert edges.sum() == 0

    def test_chunk_split_invariance(self):
        g = random_graph()
        ks = KernelSampler(get_model("IC", g), "batched", 32)
        whole = ks.sample_indexed(5, 0, 200)
        a = ks.sample_indexed(5, 0, 90)
        b = ks.sample_indexed(5, 90, 110)
        assert_same_draws(
            whole,
            (
                np.concatenate([a[0], b[0]]),
                np.concatenate([a[1], b[1]]),
                np.concatenate([a[2], b[2]]),
            ),
        )


# ----------------------------------------------------- integration seams
def kernel_store(graph, model_name, kernel, count=160, seed=9, batch=64):
    cfg = SamplingConfig.efficientimm(
        num_threads=1, kernel=kernel, kernel_batch=batch
    )
    sampler = RRRSampler(get_model(model_name, graph), cfg, seed=seed)
    sampler.extend(count)
    return sampler


class TestSamplerIntegration:
    @pytest.mark.parametrize("model_name", ("IC", "LT"))
    def test_rrrsampler_kernels_agree(self, model_name):
        g = random_graph(model_name)
        fps = {
            kernel_store(g, model_name, k, batch=b).store.fingerprint()
            for k, b in (("batched", 64), ("batched", 7), ("scalar", 1))
        }
        assert len(fps) == 1

    def test_incremental_extend_matches_one_shot(self):
        g = random_graph()
        a = kernel_store(g, "IC", "batched", count=150)
        b = kernel_store(g, "IC", "batched", count=60)
        b.extend(150)
        assert a.store.fingerprint() == b.store.fingerprint()
        assert a.per_set_costs == b.per_set_costs
        np.testing.assert_array_equal(a.counter, b.counter)

    def test_fused_counter_matches_store(self):
        g = random_graph()
        s = kernel_store(g, "IC", "batched")
        np.testing.assert_array_equal(s.counter, s.store.vertex_counts())

    def test_kernel_requires_integer_seed(self):
        g = random_graph()
        cfg = SamplingConfig.efficientimm(num_threads=1, kernel="batched")
        with pytest.raises(ParameterError):
            RRRSampler(get_model("IC", g), cfg, seed=np.random.default_rng(0))

    @pytest.mark.parametrize("workers", (1, 2, 3))
    def test_parallel_generate_worker_invariance(self, workers):
        g = random_graph()
        ref = parallel_generate(
            g, "IC", 120, num_workers=1, seed=4,
            backend=SerialBackend(), kernel="batched",
        )
        got = parallel_generate(
            g, "IC", 120, num_workers=workers, seed=4,
            backend=SerialBackend(), kernel="batched", kernel_batch=16,
        )
        assert ref.fingerprint() == got.fingerprint()

    def test_parallel_generate_kernels_and_processes_agree(self):
        g = random_graph()
        serial = parallel_generate(
            g, "IC", 90, num_workers=2, seed=4,
            backend=SerialBackend(), kernel="scalar",
        )
        procs = parallel_generate(
            g, "IC", 90, num_workers=2, seed=4, kernel="batched"
        )
        assert serial.fingerprint() == procs.fingerprint()

    def test_final_selection_invariant_across_kernels(self):
        g = random_graph()
        results = [
            EfficientIMM(g).run(
                IMMParams(
                    k=5, model="IC", theta_cap=400, seed=2,
                    kernel=k, kernel_batch=b,
                )
            )
            for k, b in (("batched", 64), ("batched", 5), ("scalar", 64))
        ]
        seeds = {tuple(r.seeds.tolist()) for r in results}
        assert len(seeds) == 1

    def test_legacy_path_untouched_by_kernel_flag(self):
        g = random_graph()
        a = parallel_generate(
            g, "IC", 60, num_workers=2, seed=4, backend=SerialBackend()
        )
        b = parallel_generate(
            g, "IC", 60, num_workers=2, seed=4, backend=SerialBackend()
        )
        assert a.fingerprint() == b.fingerprint()


# -------------------------------------------------- dynamic maintenance
class TestMaintainerKernel:
    def drive(self, kernel, batch):
        from repro.dynamic import DeltaGraph, IncrementalMaintainer

        d = DeltaGraph(random_graph(n=80, m=320))
        m = IncrementalMaintainer(
            d, num_sets=150, seed=3, kernel=kernel, kernel_batch=batch,
            full_resample_threshold=1.0,
        )
        rng = np.random.default_rng(11)
        for _ in range(3):
            src, dst, _ = d.compact().edge_array()
            picks = rng.choice(src.size, size=4, replace=False)
            for j in picks:
                u, v = int(src[j]), int(dst[j])
                if d.has_edge(u, v):
                    d.reweight(u, v, float(rng.random()))
            m.apply(d.commit())
        return m

    def test_replay_byte_identical_across_kernels_and_batches(self):
        fps = {
            self.drive(k, b).store.fingerprint()
            for k, b in (("batched", 64), ("batched", 7), ("scalar", 1))
        }
        assert len(fps) == 1

    def test_checkpoint_key_stable_for_legacy_and_distinct_for_kernel(self):
        from repro.dynamic import DeltaGraph, IncrementalMaintainer

        d = DeltaGraph(random_graph(n=80, m=320))
        legacy = IncrementalMaintainer(d, num_sets=10, seed=0, build=False)
        batched = IncrementalMaintainer(
            d, num_sets=10, seed=0, build=False, kernel="batched"
        )
        wide = IncrementalMaintainer(
            d, num_sets=10, seed=0, build=False,
            kernel="batched", kernel_batch=7,
        )
        assert legacy.checkpoint_key() != batched.checkpoint_key()
        # batch size never changes bytes, so it must not change the key
        assert batched.checkpoint_key() == wide.checkpoint_key()


# ------------------------------------------------------------- telemetry
class TestKernelTelemetry:
    def test_kernels_metric_family(self):
        g = random_graph()
        with telemetry.session() as tel:
            kernel_store(g, "IC", "batched", count=100)
        snap = tel.snapshot()
        assert snap["counters"]["kernels.sets"] == 100
        assert snap["counters"]["kernels.edges"] > 0
        assert snap["counters"]["kernels.calls.batched"] >= 1
        assert snap["counters"]["kernels.levels"] >= 1
        assert "kernels.batch_occupancy" in snap["histograms"]
        assert snap["gauges"]["kernels.sets_per_sec"] > 0

    def test_scalar_kernel_reports_too(self):
        g = random_graph()
        with telemetry.session() as tel:
            kernel_store(g, "IC", "scalar", count=40)
        snap = tel.snapshot()
        assert snap["counters"]["kernels.calls.scalar"] >= 1
        assert "kernels.levels" not in snap["counters"]


# ------------------------------------------------------------- validation
class TestValidation:
    def test_check_kernel(self):
        assert check_kernel(None) is None
        assert check_kernel("batched") == "batched"
        with pytest.raises(ParameterError):
            check_kernel("simd")

    def test_imm_params_validate_kernel(self):
        with pytest.raises(ParameterError):
            IMMParams(k=1, kernel="turbo")
        with pytest.raises(ParameterError):
            IMMParams(k=1, kernel="batched", kernel_batch=0)

    def test_kernel_sampler_needs_explicit_kernel(self):
        g = random_graph()
        with pytest.raises(ParameterError):
            KernelSampler(get_model("IC", g), None)  # type: ignore[arg-type]
