"""Cross-module property-based invariants (hypothesis).

These go beyond per-module unit tests: each property here spans the whole
pipeline (graph -> sampling -> selection -> result) or ties two subsystems
together (kernels vs cost model, stores vs representations).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EfficientIMM, IMMParams
from repro.core.selection import efficient_select, ripples_select
from repro.graph.builder import from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.weights import assign_ic_weights, assign_lt_weights
from repro.sketch.store import FlatRRRStore


@st.composite
def small_ic_graph(draw):
    n = draw(st.integers(5, 40))
    m = draw(st.integers(0, 5 * n))
    seed = draw(st.integers(0, 10_000))
    src, dst = erdos_renyi(n, m, seed=seed)
    g = from_edge_array(src, dst, num_vertices=n)
    return assign_ic_weights(g, seed=seed), seed


class TestEndToEndInvariants:
    @given(small_ic_graph(), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_imm_result_wellformed(self, graph_seed, k):
        graph, seed = graph_seed
        k = min(k, graph.num_vertices)
        res = EfficientIMM(graph).run(
            IMMParams(k=k, theta_cap=150, seed=seed)
        )
        assert res.seeds.size == k
        assert len(set(res.seeds.tolist())) == k
        assert 0 <= res.seeds.min() and res.seeds.max() < graph.num_vertices
        assert 0.0 <= res.coverage_fraction <= 1.0
        assert 0.0 <= res.spread_estimate <= graph.num_vertices
        assert res.num_rrrsets >= 1

    @given(small_ic_graph())
    @settings(max_examples=12, deadline=None)
    def test_coverage_monotone_in_k(self, graph_seed):
        graph, seed = graph_seed
        if graph.num_vertices < 4:
            return
        covs = []
        for k in (1, 2, 4):
            res = EfficientIMM(graph).run(
                IMMParams(k=k, theta_cap=120, seed=seed)
            )
            covs.append(res.coverage_fraction)
        assert covs[0] <= covs[1] <= covs[2]

    @given(small_ic_graph(), st.integers(1, 4))
    @settings(max_examples=12, deadline=None)
    def test_kernels_agree_end_to_end(self, graph_seed, k):
        from repro.core import RipplesIMM

        graph, seed = graph_seed
        k = min(k, graph.num_vertices)
        params = IMMParams(k=k, theta_cap=100, seed=seed)
        a = EfficientIMM(graph).run(params)
        b = RipplesIMM(graph).run(params)
        assert np.array_equal(a.seeds, b.seeds)
        assert a.coverage_fraction == b.coverage_fraction


class TestSamplerInvariants:
    @given(small_ic_graph(), st.integers(1, 60))
    @settings(max_examples=15, deadline=None)
    def test_rrr_sets_are_valid(self, graph_seed, count):
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model

        graph, seed = graph_seed
        sampler = RRRSampler(
            get_model("IC", graph),
            SamplingConfig.efficientimm(num_threads=1),
            seed=seed,
        )
        sampler.extend(count)
        assert len(sampler.store) == count
        for s in sampler.store:
            assert s.size >= 1  # the root is always present
            assert len(set(s.tolist())) == s.size  # no duplicates
            assert np.all(np.diff(s) > 0)  # strictly sorted
            assert s.min() >= 0 and s.max() < graph.num_vertices
        # Fused counter equals the exact multiset count.
        assert np.array_equal(sampler.counter, sampler.store.vertex_counts())

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_lt_walks_are_simple_paths(self, seed):
        from repro.diffusion.base import get_model

        src, dst = erdos_renyi(25, 120, seed=seed)
        g = assign_lt_weights(
            from_edge_array(src, dst, num_vertices=25), seed=seed
        )
        model = get_model("LT", g)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            walk = model.reverse_sample(model.random_root(rng), rng)
            assert len(set(walk.tolist())) == walk.size
            # Consecutive pairs are actual reverse edges.
            rev = g.transpose()
            for a, b in zip(walk[:-1], walk[1:]):
                assert b in rev.neighbors(int(a))


class TestSelectionCostCoupling:
    @given(
        st.lists(
            st.lists(st.integers(0, 29), min_size=1, max_size=10, unique=True),
            min_size=2, max_size=40,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_ripples_total_ops_affine_in_threads(self, sets, k):
        """W(p) = A + B*p exactly — the decomposition the cost model uses."""
        store = FlatRRRStore(30, sort_sets=True)
        for s in sets:
            store.append(np.asarray(s, dtype=np.int32))
        w = {
            p: float(ripples_select(store, k, p).stats.per_thread_ops().sum())
            for p in (1, 2, 3)
        }
        # Affine check: the increment from p=1->2 equals p=2->3.
        assert w[2] - w[1] == pytest.approx(w[3] - w[2], rel=1e-6, abs=1e-6)

    @given(
        st.lists(
            st.lists(st.integers(0, 29), min_size=1, max_size=10, unique=True),
            min_size=2, max_size=40,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_efficient_reduction_term_only(self, sets):
        """EfficientIMM's only p-dependent work is the k*n reduction scan."""
        store = FlatRRRStore(30, sort_sets=True)
        for s in sets:
            store.append(np.asarray(s, dtype=np.int32))
        w1 = float(efficient_select(store, 2, 1).stats.per_thread_ops().sum())
        w4 = float(efficient_select(store, 2, 4).stats.per_thread_ops().sum())
        # The reduction scan contributes n per round regardless of p; all
        # other terms are partitioned.  Totals must be equal.
        assert w4 == pytest.approx(w1, rel=1e-9)


class TestScheduleInvariants:
    @given(
        st.lists(st.floats(0.01, 100.0), min_size=1, max_size=80),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_dynamic_never_worse_than_worst_static(self, costs, p):
        from repro.runtime.workqueue import simulate_schedule

        c = np.asarray(costs)
        dyn = simulate_schedule(c, p, policy="dynamic", chunk_size=1)
        # List scheduling is a 2-approximation: makespan <= sum/p + max.
        assert dyn.makespan <= c.sum() / p + c.max() + 1e-9

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=60),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_lower_bound(self, costs, p):
        from repro.runtime.workqueue import simulate_schedule

        c = np.asarray(costs)
        for policy in ("static", "dynamic", "cyclic"):
            r = simulate_schedule(c, p, policy=policy, chunk_size=2)
            assert r.makespan >= c.sum() / p - 1e-9
            assert r.makespan >= c.max() - 1e-9 if c.size else True


class TestCostModelSanity:
    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_times_positive_and_finite(self, seed):
        from repro.simmachine.cost import CostModel, profile_pair
        from repro.simmachine.topology import perlmutter

        src, dst = erdos_renyi(40, 160, seed=seed)
        g = assign_ic_weights(
            from_edge_array(src, dst, num_vertices=40), seed=seed
        )
        profs = profile_pair(g, "x", "IC", k=3, theta_cap=60, seed=seed)
        cm = CostModel(perlmutter())
        for prof in profs.values():
            for p in (1, 8, 128):
                t = cm.total_time_s(prof, p)["Total"]
                assert np.isfinite(t) and t > 0.0
