"""Graceful-shutdown tests: guard semantics in-process, SIGTERM end-to-end.

The unit tests drive :class:`GracefulShutdown` with real signals delivered
to this process (pytest runs the suite on the main thread, so handlers
install); the end-to-end test SIGTERMs a live ``repro serve`` subprocess
mid-stream and asserts the drain: in-flight responses printed, telemetry
flushed, exit code 0.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service import GracefulShutdown, ShutdownRequested

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal semantics"
)


def fire(sig=signal.SIGTERM):
    os.kill(os.getpid(), sig)


class TestGracefulShutdown:
    def test_signal_inside_guard_is_deferred(self):
        with GracefulShutdown() as sd:
            with sd.guard():
                fire()
                # Still here: the handler only set the flag.
                assert sd.requested and sd.signum == signal.SIGTERM
            assert sd.requested

    def test_signal_outside_guard_raises(self):
        with GracefulShutdown() as sd:
            with pytest.raises(ShutdownRequested) as exc:
                fire()
            assert exc.value.signum == signal.SIGTERM
            assert sd.requested

    def test_second_signal_escalates_past_guard(self):
        with GracefulShutdown() as sd:
            with sd.guard():
                fire()
            with sd.guard():
                with pytest.raises(ShutdownRequested):
                    fire()

    def test_guards_nest(self):
        with GracefulShutdown() as sd:
            with sd.guard(), sd.guard():
                fire()
            assert sd.requested

    def test_sigint_also_handled(self):
        with GracefulShutdown() as sd:
            with sd.guard():
                fire(signal.SIGINT)
            assert sd.signum == signal.SIGINT

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_request_is_signal_free(self):
        sd = GracefulShutdown()
        sd.request()
        assert sd.requested and sd.signum == signal.SIGTERM

    def test_off_main_thread_install_is_noop(self):
        result = {}

        def run():
            with GracefulShutdown() as sd:
                result["installed"] = bool(sd._previous)

        t = threading.Thread(target=run)
        t.start()
        t.join()
        assert result["installed"] is False


class TestServeDrain:
    """SIGTERM a live server: drain in-flight work, flush, exit 0."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--default-theta", "60"],
            ["shard", "serve", "--shards", "2", "--default-theta", "60"],
        ],
        ids=["serve", "shard-serve"],
    )
    def test_sigterm_drains_and_flushes(self, tmp_path, argv):
        tel_dir = tmp_path / "tel"
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *argv,
             "--telemetry", str(tel_dir)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            proc.stdin.write(
                json.dumps({"dataset": "amazon", "k": 3, "theta_cap": 60})
                + "\n"
            )
            proc.stdin.flush()
            line = proc.stdout.readline()
            assert json.loads(line)["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "shutdown: signal" in err
        assert (tel_dir / "metrics.json").exists(), "telemetry not flushed"
        assert "telemetry:" in err
