"""Tests for the Generate_RRRsets sampler and its accounting."""

import numpy as np
import pytest

from repro.core.sampling import (
    RRRSampler,
    SamplingConfig,
    charge_per_set,
    modelled_store_bytes,
    reverse_sample_with_cost,
)
from repro.diffusion.base import get_model
from repro.errors import OutOfMemoryModelError, ParameterError
from repro.sketch.rrr import AdaptivePolicy

from conftest import make_graph


@pytest.fixture
def chain_model():
    g = make_graph([(i, i + 1, 1.0) for i in range(9)], n=10)
    return get_model("IC", g)


class TestReverseSampleWithCost:
    def test_ic_counts_edges(self, chain_model, rng):
        verts, edges = reverse_sample_with_cost(chain_model, 9, rng)
        assert sorted(verts.tolist()) == list(range(10))
        # Chain: each of the 9 in-edges examined exactly once.
        assert edges == 9

    def test_ic_no_inedges(self, chain_model, rng):
        verts, edges = reverse_sample_with_cost(chain_model, 0, rng)
        assert verts.tolist() == [0]
        assert edges == 0

    def test_lt_cost_is_path_length(self, rng):
        g = make_graph([(0, 1, 1.0), (1, 2, 1.0)], n=3)
        model = get_model("LT", g)
        verts, cost = reverse_sample_with_cost(model, 2, rng)
        assert cost == verts.size

    def test_matches_plain_reverse_sample_distribution(self, amazon_ic):
        # Same seed stream => same sets as the uninstrumented sampler.
        model_a = get_model("IC", amazon_ic)
        model_b = get_model("IC", amazon_ic)
        ra, rb = np.random.default_rng(3), np.random.default_rng(3)
        for _ in range(5):
            va, _ = reverse_sample_with_cost(model_a, 7, ra)
            vb = model_b.reverse_sample(7, rb)
            assert np.array_equal(np.sort(va), np.sort(vb))


class TestModelledStoreBytes:
    def test_ripples_all_lists(self):
        sizes = np.array([10, 100, 1000])
        assert modelled_store_bytes(sizes, 3200, None) == 4 * 1110

    def test_adaptive_caps_dense_sets(self):
        sizes = np.array([10, 1000])
        policy = AdaptivePolicy()  # threshold 3200/32 = 100
        got = modelled_store_bytes(sizes, 3200, policy)
        assert got == 4 * 10 + 400  # bitmap = 3200/8 bytes

    def test_adaptive_never_worse_than_lists(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(1, 2000, size=50)
        assert modelled_store_bytes(sizes, 3200, AdaptivePolicy()) <= (
            modelled_store_bytes(sizes, 3200, None)
        )


class TestChargePerSet:
    def test_ripples_charges_full_sort(self):
        edges = np.array([10.0])
        sizes = np.array([8.0])
        got = charge_per_set(edges, sizes, 100, None, fused=False)
        assert got[0] == pytest.approx(10 + 8 + 8 * 3)

    def test_efficientimm_charges_bitmap_build(self):
        edges = np.array([10.0])
        sizes = np.array([50.0])  # above threshold 100/32 = 3
        got = charge_per_set(edges, sizes, 100, AdaptivePolicy(), fused=True)
        assert got[0] == pytest.approx(10 + 50 + 50 + 50)  # + fused counter

    def test_small_sets_sorted_under_adaptive(self):
        edges = np.array([4.0])
        sizes = np.array([2.0])
        got = charge_per_set(edges, sizes, 1000, AdaptivePolicy(), fused=False)
        assert got[0] == pytest.approx(4 + 2 + 2 * 1)


class TestRRRSampler:
    def test_extend_reaches_target(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=0
        )
        sampler.extend(25)
        assert len(sampler.store) == 25
        sampler.extend(40)
        assert len(sampler.store) == 40

    def test_extend_idempotent_at_target(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=0
        )
        sampler.extend(10)
        first = sampler.store.vertices.copy()
        sampler.extend(10)
        assert np.array_equal(sampler.store.vertices, first)

    def test_fused_counter_matches_store(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=1
        )
        sampler.extend(30)
        assert np.array_equal(sampler.counter, sampler.store.vertex_counts())

    def test_unfused_counter_stays_zero(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.ripples(), seed=1
        )
        sampler.extend(10)
        assert not sampler.counter.any()

    def test_store_sets_sorted(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=2
        )
        sampler.extend(5)
        for s in sampler.store:
            assert np.all(np.diff(s) >= 0)

    def test_determinism(self, amazon_ic):
        a = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=3
        )
        b = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=3
        )
        a.extend(12)
        b.extend(12)
        assert np.array_equal(a.store.vertices, b.store.vertices)

    def test_per_thread_stats_cover_all_work(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic),
            SamplingConfig.efficientimm(num_threads=4),
            seed=4,
        )
        sampler.extend(20)
        total = float(np.sum(sampler.stats.loads))
        assert total == pytest.approx(sum(sampler.per_set_costs))

    def test_dynamic_schedule_balances(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic),
            SamplingConfig.efficientimm(num_threads=4),
            seed=5,
        )
        sampler.extend(60)
        loads = sampler.stats.loads
        assert loads.max() < 2.0 * max(loads.mean(), 1.0)

    def test_memory_budget_raises(self, amazon_ic):
        cfg = SamplingConfig.ripples(memory_budget_bytes=1000)
        sampler = RRRSampler(get_model("IC", amazon_ic), cfg, seed=6)
        with pytest.raises(OutOfMemoryModelError):
            sampler.extend(50)

    def test_adaptive_fits_same_budget(self, amazon_ic):
        # The OOM contrast at sampler level: same workload, same budget.
        budget = 60 * ((amazon_ic.num_vertices + 7) // 8)
        rip = RRRSampler(
            get_model("IC", amazon_ic),
            SamplingConfig.ripples(memory_budget_bytes=budget),
            seed=7,
        )
        eimm = RRRSampler(
            get_model("IC", amazon_ic),
            SamplingConfig.efficientimm(memory_budget_bytes=budget),
            seed=7,
        )
        eimm.extend(50)
        with pytest.raises(OutOfMemoryModelError):
            rip.extend(50)

    def test_rejects_zero_threads(self, amazon_ic):
        with pytest.raises(ParameterError):
            RRRSampler(
                get_model("IC", amazon_ic), SamplingConfig(num_threads=0)
            )

    def test_gather_cost(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.ripples(), seed=8
        )
        sampler.extend(10)
        assert sampler.gather_cost() == 2.0 * sampler.store.total_entries

    def test_rebuild_counter(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.ripples(), seed=9
        )
        sampler.extend(8)
        sampler.rebuild_counter()
        assert np.array_equal(sampler.counter, sampler.store.vertex_counts())

    def test_reset_counter(self, amazon_ic):
        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=10
        )
        sampler.extend(5)
        sampler.reset_counter()
        assert not sampler.counter.any()
