"""Tests for both Find_Most_Influential_Set kernels.

The crucial contract: EfficientIMM's and Ripples' selections are different
*executions* of the same greedy max-cover, so their seeds must be identical
on every input, and both must match a brute-force greedy reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.sketch.store import FlatRRRStore
from repro.core.selection import (
    efficient_select,
    ripples_select,
    segmented_membership,
)


def store_of(sets, n, sort=True):
    s = FlatRRRStore(n, sort_sets=sort)
    for x in sets:
        s.append(np.asarray(x, dtype=np.int32))
    return s


def greedy_reference(sets, n, k):
    """Brute-force greedy max-cover with lowest-id tie-breaking."""
    sets = [set(x) for x in sets]
    covered = [False] * len(sets)
    seeds = []
    for _ in range(k):
        counts = np.zeros(n, dtype=np.int64)
        for flag, s in zip(covered, sets):
            if not flag:
                for v in s:
                    counts[v] += 1
        counts[np.asarray(seeds, dtype=np.int64)] = -1 if seeds else counts[[]]
        v = int(np.argmax(counts))
        if counts[v] <= 0:
            # All covered: fill with the lowest unchosen ids.
            for u in range(n):
                if u not in seeds:
                    seeds.append(u)
                    break
            continue
        seeds.append(v)
        for i, s in enumerate(sets):
            if v in s:
                covered[i] = True
    return seeds


class TestSegmentedMembership:
    def test_finds_containing_sets(self):
        s = store_of([[1, 5, 9], [2, 5], [0, 3]], 10)
        active = np.ones(3, dtype=bool)
        assert segmented_membership(s, 5, active).tolist() == [0, 1]

    def test_respects_active_mask(self):
        s = store_of([[1, 5], [5], [5, 7]], 10)
        active = np.array([True, False, True])
        assert segmented_membership(s, 5, active).tolist() == [0, 2]

    def test_absent_vertex(self):
        s = store_of([[1, 2], [3]], 10)
        assert segmented_membership(s, 9, np.ones(2, dtype=bool)).size == 0

    def test_empty_sets_handled(self):
        s = store_of([[], [4], []], 10)
        assert segmented_membership(s, 4, np.ones(3, dtype=bool)).tolist() == [1]

    def test_no_active_sets(self):
        s = store_of([[1]], 10)
        assert segmented_membership(s, 1, np.zeros(1, dtype=bool)).size == 0

    def test_boundary_vertices(self):
        s = store_of([[0, 9]], 10)
        active = np.ones(1, dtype=bool)
        assert segmented_membership(s, 0, active).tolist() == [0]
        assert segmented_membership(s, 9, active).tolist() == [0]

    @given(
        st.lists(
            st.lists(st.integers(0, 19), min_size=0, max_size=15),
            min_size=1, max_size=25,
        ),
        st.integers(0, 19),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_naive(self, sets, v):
        s = store_of(sets, 20)
        active = np.ones(len(sets), dtype=bool)
        got = set(segmented_membership(s, v, active).tolist())
        expected = {i for i, x in enumerate(sets) if v in x}
        assert got == expected


class TestEfficientSelect:
    def test_obvious_winner(self):
        s = store_of([[0, 1], [0, 2], [0, 3], [4]], 5)
        res = efficient_select(s, 1)
        assert res.seeds.tolist() == [0]
        assert res.coverage_fraction == 0.75

    def test_two_seeds_cover_all(self):
        s = store_of([[0, 1], [0, 2], [3], [3, 4]], 5)
        res = efficient_select(s, 2)
        assert res.seeds.tolist() == [0, 3]
        assert res.coverage_fraction == 1.0

    def test_tie_breaks_to_lowest_id(self):
        s = store_of([[2], [4]], 5)
        res = efficient_select(s, 1)
        assert res.seeds[0] == 2

    def test_fill_after_full_coverage(self):
        s = store_of([[3]], 5)
        res = efficient_select(s, 3)
        assert res.seeds.tolist() == [3, 0, 1]  # fill picks lowest unchosen

    def test_seeds_unique(self):
        s = store_of([[0, 1, 2], [0, 1], [2, 3]], 6)
        res = efficient_select(s, 4)
        assert len(set(res.seeds.tolist())) == 4

    def test_initial_counter_shortcut_same_result(self):
        s = store_of([[0, 1], [1, 2], [2]], 4)
        counter = s.vertex_counts()
        a = efficient_select(s, 2)
        b = efficient_select(s, 2, initial_counter=counter)
        assert np.array_equal(a.seeds, b.seeds)

    def test_initial_counter_not_mutated(self):
        s = store_of([[0, 1], [1, 2]], 4)
        counter = s.vertex_counts()
        before = counter.copy()
        efficient_select(s, 2, initial_counter=counter)
        assert np.array_equal(counter, before)

    def test_adaptive_off_same_seeds(self):
        s = store_of([[0, 1, 2], [0, 3], [1, 2], [4]], 6)
        a = efficient_select(s, 3, adaptive_update=True)
        b = efficient_select(s, 3, adaptive_update=False)
        assert np.array_equal(a.seeds, b.seeds)

    def test_adaptive_off_costs_more(self, amazon_ic):
        from repro.core.sampling import RRRSampler, SamplingConfig
        from repro.diffusion.base import get_model

        sampler = RRRSampler(
            get_model("IC", amazon_ic), SamplingConfig.efficientimm(), seed=0
        )
        sampler.extend(120)
        on = efficient_select(sampler.store, 10, adaptive_update=True)
        off = efficient_select(sampler.store, 10, adaptive_update=False)
        assert np.array_equal(on.seeds, off.seeds)
        assert (
            off.stats.total_memory_ops > 3.0 * on.stats.total_memory_ops
        )

    def test_round_records(self):
        s = store_of([[0, 1], [0, 2], [3]], 5)
        res = efficient_select(s, 2)
        assert res.rounds[0]["seed"] == 0
        assert res.rounds[0]["new_covered_sets"] == 2
        assert res.rounds[0]["method"] in ("rebuild", "decrement")

    def test_multithread_same_seeds(self):
        rng = np.random.default_rng(0)
        sets = [rng.integers(0, 50, size=rng.integers(1, 20)) for _ in range(60)]
        s = store_of(sets, 50)
        base = efficient_select(s, 8, num_threads=1).seeds
        for p in (2, 3, 7, 16):
            assert np.array_equal(efficient_select(s, 8, num_threads=p).seeds, base)

    def test_rejects_empty_store(self):
        with pytest.raises(ParameterError):
            efficient_select(FlatRRRStore(5), 1)

    def test_rejects_k_above_n(self):
        s = store_of([[0]], 2)
        with pytest.raises(ParameterError):
            efficient_select(s, 3)

    def test_rejects_bad_threads(self):
        s = store_of([[0]], 2)
        with pytest.raises(ParameterError):
            efficient_select(s, 1, num_threads=0)


class TestRipplesSelect:
    def test_requires_sorted_store(self):
        s = FlatRRRStore(5, sort_sets=False)
        s.append(np.array([0, 1]))
        with pytest.raises(ParameterError, match="sort_sets"):
            ripples_select(s, 1)

    def test_same_result_as_efficient(self):
        s = store_of([[0, 1], [0, 2], [0, 3], [4]], 5)
        assert ripples_select(s, 2).seeds.tolist() == efficient_select(
            s, 2
        ).seeds.tolist()

    def test_multithread_same_seeds(self):
        rng = np.random.default_rng(1)
        sets = [rng.integers(0, 40, size=rng.integers(1, 15)) for _ in range(50)]
        s = store_of(sets, 40)
        base = ripples_select(s, 6, num_threads=1).seeds
        for p in (2, 5, 8):
            assert np.array_equal(ripples_select(s, 6, num_threads=p).seeds, base)

    def test_work_scales_with_threads(self):
        rng = np.random.default_rng(2)
        sets = [rng.integers(0, 100, size=20) for _ in range(80)]
        s = store_of(sets, 100)
        w1 = ripples_select(s, 5, num_threads=1).stats.total_memory_ops
        w4 = ripples_select(s, 5, num_threads=4).stats.total_memory_ops
        # The paper's Challenge 1: total traffic grows with threads.
        assert w4 > 2.0 * w1

    def test_efficient_work_does_not_scale_with_threads(self):
        rng = np.random.default_rng(3)
        sets = [rng.integers(0, 100, size=20) for _ in range(80)]
        s = store_of(sets, 100)
        w1 = efficient_select(s, 5, num_threads=1).stats.total_memory_ops
        w8 = efficient_select(s, 5, num_threads=8).stats.total_memory_ops
        assert w8 < 1.5 * w1  # work-efficient: only reduction scans grow


class TestKernelEquivalence:
    @given(
        st.lists(
            st.lists(st.integers(0, 24), min_size=0, max_size=12, unique=True),
            min_size=1, max_size=30,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_three_way_agreement(self, sets, k):
        n = 25
        s = store_of(sets, n)
        ref = greedy_reference(sets, n, k)
        eff = efficient_select(s, k, num_threads=3).seeds.tolist()
        rip = ripples_select(s, k, num_threads=2).seeds.tolist()
        assert eff == ref
        assert rip == ref

    @given(
        st.lists(
            st.lists(st.integers(0, 24), min_size=1, max_size=12, unique=True),
            min_size=1, max_size=30,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_coverage_fraction_correct(self, sets):
        n, k = 25, 3
        s = store_of(sets, n)
        res = efficient_select(s, k)
        seeds = set(res.seeds.tolist()[:k])
        expected = sum(bool(seeds & set(x)) for x in sets) / len(sets)
        assert res.coverage_fraction == pytest.approx(expected)
