"""repro.gateway: wire helpers, admission control, shedding, clients, loadgen.

The overload tests run against a deliberately slow fake engine so the
timing windows are controlled by the test, not by sampling noise; the
acceptance test (gateway answers == direct engine answers under light
load) runs against two real :class:`QueryEngine` instances on the amazon
replica.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.errors import BackendError, ParameterError
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    GatewayServer,
    GatewayStats,
    LoadGenConfig,
    run_loadgen,
    serve_in_thread,
)
from repro.gateway.client import (
    AsyncGatewayClient,
    decode_response_line,
    encode_control,
    encode_queries,
)
from repro.resilience import RetryPolicy
from repro.service import EngineConfig, IMQuery, IMResponse, QueryEngine
from repro.service.protocol import parse_request_line


def _q(dataset="amazon", **kw) -> IMQuery:
    kw.setdefault("theta_cap", 200)
    return IMQuery(dataset=dataset, **kw)


class FakeEngine:
    """Answers every query after ``delay_s``; records the batches it saw."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.batches: list[list[IMQuery]] = []

    def execute(self, queries):
        if self.delay_s:
            time.sleep(self.delay_s)
        self.batches.append(list(queries))
        return [
            IMResponse(
                status="ok", id=q.id, seeds=list(range(q.k)),
                spread_estimate=float(q.k), coverage_fraction=1.0,
                num_rrrsets=1,
            )
            for q in queries
        ]

    def stats_snapshot(self):
        return {"fake": {"batches": len(self.batches)}}


def _raw_roundtrip(host, port, lines, expected, timeout=15.0):
    """Pipeline several request lines on one socket, read ``expected``
    response lines back (the shape the sync client cannot produce)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        f = sock.makefile("rwb")
        f.write(("\n".join(lines) + "\n").encode())
        f.flush()
        return [decode_response_line(f.readline()) for _ in range(expected)]


class TestWireHelpers:
    def test_single_query_roundtrip(self):
        q = _q(k=7, deadline_s=1.5, id="a")
        line = encode_queries([q])
        assert json.loads(line)["k"] == 7  # bare object, not a batch
        [back] = parse_request_line(line)
        assert back == q

    def test_batch_roundtrip(self):
        qs = [_q(k=3), _q(k=9, id="x")]
        line = encode_queries(qs)
        assert "queries" in json.loads(line)
        assert parse_request_line(line) == qs

    def test_empty_batch_rejected(self):
        with pytest.raises(ParameterError):
            encode_queries([])

    def test_control_roundtrip(self):
        line = encode_control("stats")
        parsed = parse_request_line(line)
        assert parsed == {"op": "stats"}
        assert encode_control("kill", shard=1)
        with pytest.raises(ParameterError):
            encode_control("")

    def test_decode_response_line(self):
        resp = IMResponse(status="ok", seeds=[1, 2], id="z")
        back = decode_response_line(resp.to_json())
        assert isinstance(back, IMResponse)
        assert back.seeds == [1, 2] and back.id == "z"
        assert decode_response_line('{"op": "ping", "status": "ok"}') == {
            "op": "ping", "status": "ok"
        }
        with pytest.raises(ParameterError):
            decode_response_line("not json")
        with pytest.raises(ParameterError):
            decode_response_line("[1, 2]")

    def test_response_from_dict_ignores_unknown_keys(self):
        doc = {"status": "ok", "seeds": [4], "new_server_field": 1}
        assert IMResponse.from_dict(doc).seeds == [4]
        with pytest.raises(ParameterError):
            IMResponse.from_dict({"seeds": [4]})

    def test_overloaded_response_carries_retry_after(self):
        resp = IMResponse(
            status="overloaded", error="overloaded: queue full",
            retry_after_s=0.25,
        )
        doc = resp.to_dict()
        assert doc["retry_after_s"] == 0.25
        back = IMResponse.from_dict(doc)
        assert back.retry_after_s == 0.25 and not back.ok


class TestGatewayConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"max_connections": 0},
            {"queue_depth": 0},
            {"queue_deadline_s": 0},
            {"batch_window_s": -1},
            {"batch_max": 0},
            {"rate_limit_per_s": 0},
            {"idle_timeout_s": 0},
            {"max_line_bytes": 10},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ParameterError):
            GatewayConfig(**kw)

    def test_stats_shed_sums_categories(self):
        stats = GatewayStats(
            shed_queue_full=1, shed_deadline=2, shed_stale=3,
            shed_rate_limited=4,
        )
        assert stats.shed == 10
        assert stats.to_dict()["shed"] == 10

    def test_engine_must_be_executable(self):
        with pytest.raises(ParameterError):
            GatewayServer(object())


class TestGatewayServing:
    def test_roundtrip_and_stats(self):
        engine = FakeEngine()
        with serve_in_thread(engine, config=GatewayConfig()) as srv:
            with GatewayClient(srv.host, srv.port) as client:
                resp = client.query(_q(k=4, id="r1"))
                assert resp.ok and resp.seeds == [0, 1, 2, 3]
                assert resp.id == "r1"
                assert resp.latency_s > 0  # end-to-end, stamped by the gateway
                stats = client.stats()
        assert stats["gateway"]["accepted"] == 1
        assert stats["fake"]["batches"] == 1  # engine snapshot folded in
        assert stats["status"] == "ok"

    def test_multi_query_line_keeps_order(self):
        engine = FakeEngine()
        with serve_in_thread(engine, config=GatewayConfig()) as srv:
            with GatewayClient(srv.host, srv.port) as client:
                resps = client.execute([_q(k=k) for k in (5, 2, 8)])
        assert [len(r.seeds) for r in resps] == [5, 2, 8]
        assert all(r.id is None for r in resps)  # invented ids are stripped

    def test_micro_batch_coalescing(self):
        engine = FakeEngine()
        config = GatewayConfig(batch_window_s=0.2, batch_max=8)
        with serve_in_thread(engine, config=config) as srv:
            with GatewayClient(srv.host, srv.port) as client:
                client.execute([_q(k=k, id=f"c{k}") for k in (1, 2, 3)])
        # All three queries of the line were admitted inside one window, so
        # the engine saw them as one batch (one selection pass downstream).
        assert any(len(b) == 3 for b in engine.batches)

    def test_queue_full_sheds_overloaded(self):
        engine = FakeEngine(delay_s=0.4)
        config = GatewayConfig(queue_depth=1, batch_max=1, batch_window_s=0.0)
        with serve_in_thread(engine, config=config) as srv:
            lines = [
                encode_queries([_q(k=1, id=f"q{i}")]) for i in range(4)
            ]
            out = _raw_roundtrip(srv.host, srv.port, lines, expected=4)
            shed = [r for r in out if r.status == "overloaded"]
            served = [r for r in out if r.ok]
            # q0 goes straight to the engine, q1 fills the depth-1 queue;
            # at least one of the rest must hit the full queue.
            assert shed and served
            for r in shed:
                assert r.retry_after_s is not None and r.retry_after_s > 0
                assert "admission queue" in r.error
            snap = srv.stats
            assert snap.shed_queue_full >= 1
            assert snap.shed_queue_full == len(shed)

    def test_rate_limit_sheds_excess(self):
        engine = FakeEngine()
        config = GatewayConfig(rate_limit_per_s=5.0, rate_limit_burst=2.0)
        with serve_in_thread(engine, config=config) as srv:
            with GatewayClient(srv.host, srv.port, retry=None) as client:
                resps = client.execute([_q(k=1, id=f"r{i}") for i in range(4)])
        statuses = [r.status for r in resps]
        assert statuses.count("ok") == 2  # the burst
        assert statuses.count("overloaded") == 2
        shed = [r for r in resps if r.status == "overloaded"]
        assert all("rate limit" in r.error for r in shed)
        assert srv.stats.shed_rate_limited == 2

    def test_client_deadline_expired_in_queue_is_timeout(self):
        engine = FakeEngine(delay_s=0.3)
        config = GatewayConfig(batch_max=1, batch_window_s=0.0)
        with serve_in_thread(engine, config=config) as srv:
            lines = [
                encode_queries([_q(k=1, id="busy")]),
                encode_queries([_q(k=1, id="late", deadline_s=0.05)]),
            ]
            out = _raw_roundtrip(srv.host, srv.port, lines, expected=2)
        by_id = {r.id: r for r in out}
        assert by_id["busy"].ok
        # The deadline expired while the query sat behind the busy engine:
        # answered "timeout" (never silently served late), not "overloaded".
        assert by_id["late"].status == "timeout"
        assert "expired" in by_id["late"].error
        assert srv.stats.timeouts == 1

    def test_queue_deadline_sheds_stale_work(self):
        engine = FakeEngine(delay_s=0.3)
        config = GatewayConfig(
            batch_max=1, batch_window_s=0.0, queue_deadline_s=0.05
        )
        with serve_in_thread(engine, config=config) as srv:
            lines = [
                encode_queries([_q(k=1, id="busy")]),
                encode_queries([_q(k=1, id="stale")]),  # no client deadline
            ]
            out = _raw_roundtrip(srv.host, srv.port, lines, expected=2)
        by_id = {r.id: r for r in out}
        assert by_id["busy"].ok
        assert by_id["stale"].status == "overloaded"
        assert "queue deadline" in by_id["stale"].error
        assert srv.stats.shed_stale == 1

    def test_predicted_wait_sheds_doomed_queries_at_admission(self):
        # Unit-level: with an EMA predicting a 5 s/query engine and one
        # query already queued, a 1 s-deadline query is doomed — shed at
        # admission instead of queued into a guaranteed timeout.
        class FakeConn:
            def __init__(self):
                self.sent = []

            async def send(self, doc):
                self.sent.append(doc)

        async def scenario():
            server = GatewayServer(FakeEngine(), config=GatewayConfig())
            server._queue = asyncio.Queue(maxsize=4)
            server._queue.put_nowait(object())
            server._ema_query_s = 5.0
            conn = FakeConn()
            await server._admit(
                _q(k=1, deadline_s=1.0, id="doomed"), conn, time.monotonic()
            )
            return server, conn

        server, conn = asyncio.run(scenario())
        [doc] = conn.sent
        assert doc["status"] == "overloaded"
        assert "predicted queue wait" in doc["error"]
        assert doc["retry_after_s"] >= 5.0
        assert server.stats.shed_deadline == 1

    def test_connection_limit(self):
        engine = FakeEngine()
        config = GatewayConfig(max_connections=1)
        with serve_in_thread(engine, config=config) as srv:
            with GatewayClient(srv.host, srv.port) as first:
                assert first.control("ping")["status"] == "ok"
                with socket.create_connection(
                    (srv.host, srv.port), timeout=10
                ) as sock:
                    f = sock.makefile("rb")
                    resp = decode_response_line(f.readline())
                    assert resp.status == "overloaded"
                    assert "connection limit" in resp.error
                    assert f.readline() == b""  # server closed it
        assert srv.stats.rejected_connections == 1

    def test_oversized_line_is_structured_error(self):
        engine = FakeEngine()
        config = GatewayConfig(max_line_bytes=256)
        with serve_in_thread(engine, config=config) as srv:
            with socket.create_connection((srv.host, srv.port), timeout=10) as sock:
                f = sock.makefile("rwb")
                f.write(b'{"dataset": "' + b"x" * 500 + b'"}\n')
                f.flush()
                resp = decode_response_line(f.readline())
        assert resp.status == "error"
        assert "256-byte limit" in resp.error
        assert srv.stats.bad_requests == 1

    def test_malformed_json_keeps_connection_usable(self):
        engine = FakeEngine()
        with serve_in_thread(engine, config=GatewayConfig()) as srv:
            lines = ["this is not json", encode_queries([_q(k=2, id="after")])]
            out = _raw_roundtrip(srv.host, srv.port, lines, expected=2)
        assert out[0].status == "error" and "bad JSON" in out[0].error
        assert out[1].ok and out[1].id == "after"

    def test_engine_exception_becomes_error_response(self):
        def broken(queries):
            raise RuntimeError("engine fell over")

        with serve_in_thread(broken, config=GatewayConfig()) as srv:
            with GatewayClient(srv.host, srv.port) as client:
                resp = client.query(_q(k=1))
                assert resp.status == "error"
                assert "engine fell over" in resp.error
                # The dispatcher survived: the next query is answered too.
                resp2 = client.query(_q(k=1))
                assert resp2.status == "error"
        assert srv.stats.errors == 2

    def test_control_ops(self):
        with serve_in_thread(FakeEngine(), config=GatewayConfig()) as srv:
            with GatewayClient(srv.host, srv.port) as client:
                assert client.control("ping") == {"status": "ok", "op": "ping"}
                unknown = client.control("nonsense")
                assert unknown["status"] == "error"
                assert client.control("shutdown")["status"] == "ok"
            deadline = time.monotonic() + 10
            while not srv._stopped and time.monotonic() < deadline:
                time.sleep(0.01)
            assert srv._stopped  # the shutdown op stopped the server


class TestGatewayClientRetry:
    def test_client_retries_after_overload_and_succeeds(self):
        engine = FakeEngine()
        # burst=1: the first query drains the bucket; the retry lands after
        # the ~retry_after hint once a token has refilled at 50/s.
        config = GatewayConfig(rate_limit_per_s=50.0, rate_limit_burst=1.0)
        with serve_in_thread(engine, config=config) as srv:
            retry = RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.2)
            with GatewayClient(srv.host, srv.port, retry=retry) as client:
                assert client.query(_q(k=1)).ok
                resp = client.query(_q(k=2))
        assert resp.ok
        assert srv.stats.shed_rate_limited >= 1  # at least one shed attempt

    def test_exhausted_overload_retries_return_responses(self):
        engine = FakeEngine()
        config = GatewayConfig(rate_limit_per_s=0.001, rate_limit_burst=1.0)
        with serve_in_thread(engine, config=config) as srv:
            retry = RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.02)
            with GatewayClient(
                srv.host, srv.port, retry=retry, max_retry_after_s=0.05
            ) as client:
                assert client.query(_q(k=1)).ok  # eats the only token
                resp = client.query(_q(k=2))
        # Both attempts were shed; the client returns the structured
        # overloaded response rather than raising at the caller.
        assert resp.status == "overloaded"
        assert resp.retry_after_s is not None

    def test_client_connects_before_server(self):
        engine = FakeEngine()
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        results = []

        def late_query():
            retry = RetryPolicy(max_attempts=8, base_delay_s=0.1, max_delay_s=0.5)
            with GatewayClient("127.0.0.1", port, retry=retry) as client:
                results.append(client.query(_q(k=3)))

        t = threading.Thread(target=late_query)
        t.start()
        time.sleep(0.3)  # client is failing to connect during this window
        config = GatewayConfig(port=port)
        with serve_in_thread(engine, config=config):
            t.join(timeout=15)
        assert not t.is_alive() and results[0].ok

    def test_response_count_mismatch_raises(self):
        client = GatewayClient("127.0.0.1", 1, retry=None)
        # A control payload where an IMResponse belongs: the count check
        # must fire rather than hand back a short list.
        client._roundtrip = lambda line, expected: [{"op": "stats"}]
        with pytest.raises(BackendError):
            client.execute([_q(k=1)])


class TestEngineIdentity:
    """Acceptance: under light load the gateway is a transparent proxy."""

    def test_gateway_answers_match_direct_engine(self, tmp_path):
        def canon(resp):
            doc = resp.to_dict()
            doc.pop("latency_s")  # wall-clock differs; everything else must not
            return doc

        queries = [
            _q(k=5, id="a"),
            _q(k=5, id="b"),      # warm repeat
            _q(k=9, id="c"),      # same sketch, other k
            _q(k=3, model="LT", id="d"),
        ]
        with QueryEngine(config=EngineConfig()) as direct:
            want = [canon(r) for r in direct.execute(queries)]
        with QueryEngine(config=EngineConfig()) as backend:
            with serve_in_thread(backend, config=GatewayConfig()) as srv:
                with GatewayClient(srv.host, srv.port) as client:
                    got = [canon(r) for r in client.execute(queries)]
        assert got == want

    def test_gateway_fronts_dynamic_service(self, two_triangles):
        from repro.dynamic import DynamicService

        with DynamicService(
            "tri", two_triangles, num_sets=64, seed=1
        ) as service:
            with serve_in_thread(service, config=GatewayConfig()) as srv:
                with GatewayClient(srv.host, srv.port) as client:
                    resp = client.query(IMQuery(dataset="tri", k=2))
                    assert resp.ok and resp.epoch == 0
                    wrong = client.query(IMQuery(dataset="other", k=2))
                    assert wrong.status == "error"
                    assert "serves" in wrong.error

    def test_gateway_fronts_shard_cluster(self):
        from repro.shard import RouterConfig, ShardCluster, ShardPlan

        plan = ShardPlan(num_shards=2, replication=1)
        with ShardCluster(
            plan,
            engine_config=EngineConfig(),
            router_config=RouterConfig(default_theta=200),
        ) as cluster:
            with serve_in_thread(cluster, config=GatewayConfig()) as srv:
                with GatewayClient(srv.host, srv.port) as client:
                    resp = client.query(_q(k=4))
                    assert resp.ok and len(resp.seeds) == 4


class TestLoadGen:
    def test_config_validation(self):
        with pytest.raises(ParameterError):
            LoadGenConfig(mode="sideways")
        with pytest.raises(ParameterError):
            LoadGenConfig(rate_per_s=0)
        with pytest.raises(ParameterError):
            LoadGenConfig(concurrency=0)
        with pytest.raises(ParameterError):
            LoadGenConfig(k_choices=())

    def test_zipf_mix(self):
        probs = LoadGenConfig(zipf_s=1.5).mix_probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(probs, probs[1:]))  # rank 1 hottest
        flat = LoadGenConfig(zipf_s=0.0).mix_probabilities()
        assert flat[0] == pytest.approx(flat[-1])

    def test_closed_loop_measures_capacity(self):
        engine = FakeEngine()
        with serve_in_thread(engine, config=GatewayConfig()) as srv:
            summary = run_loadgen(
                srv.host, srv.port,
                LoadGenConfig(
                    mode="closed", total_requests=30, concurrency=3,
                    dataset="any", seed=7,
                ),
            )
        assert summary["offered"] == 30
        assert summary["completed"] == 30
        assert summary["ok"] == 30 and summary["shed"] == 0
        assert summary["throughput_qps"] > 0
        assert summary["p99_ms"] >= summary["p50_ms"] >= 0

    def test_open_loop_past_capacity_sheds_but_stays_responsive(self):
        # Capacity with a 50 ms engine and a depth-1 queue is ~20 qps;
        # offering 200 qps is ~10x capacity, so the gateway must shed —
        # with structured responses, not hangs or errors.
        engine = FakeEngine(delay_s=0.05)
        config = GatewayConfig(
            queue_depth=1, batch_max=1, batch_window_s=0.0,
            queue_deadline_s=0.5,
        )
        with serve_in_thread(engine, config=config) as srv:
            summary = run_loadgen(
                srv.host, srv.port,
                LoadGenConfig(
                    mode="open", total_requests=40, rate_per_s=200.0,
                    concurrency=8, dataset="any", seed=11,
                ),
            )
        assert summary["completed"] + summary["transport_errors"] == 40
        assert summary["shed"] > 0
        assert summary["ok"] >= 1
        assert summary["error"] == 0
        # Accepted queries stayed within queue_deadline + service time.
        assert summary["p99_ms"] <= (0.5 + 0.05 + 0.2) * 1e3

    def test_loadgen_is_reproducible_in_offered_mix(self):
        c = LoadGenConfig(seed=3)
        import numpy as np

        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        picks1 = [int(rng1.choice(c.k_choices, p=c.mix_probabilities())) for _ in range(20)]
        picks2 = [int(rng2.choice(c.k_choices, p=c.mix_probabilities())) for _ in range(20)]
        assert picks1 == picks2
