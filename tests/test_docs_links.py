"""Documentation link integrity: tools/check_docs_links.py over this repo.

The docs index (docs/README.md) promises that every page is reachable from
it and that every internal link and anchor resolves; this test is that
promise, run on every test tier (the ``docs-check`` CI job runs the same
checker standalone).  The unit tests below also pin the GitHub anchor-slug
scheme the checker implements, so the generated ``#repro-<verb>`` anchors
in docs/cli.md cannot drift from what the checker validates.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", ROOT / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs_links", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepositoryDocs:
    def test_no_broken_links_or_anchors(self):
        problems = checker.check_links(ROOT)
        assert problems == [], "\n".join(problems)

    def test_scan_covers_index_and_top_level(self):
        pages = {p.relative_to(ROOT).as_posix() for p in checker.pages_to_scan(ROOT)}
        assert "README.md" in pages
        assert "CONTRIBUTING.md" in pages
        assert "docs/README.md" in pages
        assert "docs/cli.md" in pages

    def test_cli_reference_anchors_resolve(self):
        """The generated verbs table points at real per-verb headings."""
        anchors = checker.extract_anchors(ROOT / "docs" / "cli.md")
        import repro.cli as cli

        for verb in cli.command_help():
            assert f"repro-{verb}" in anchors


class TestSlugScheme:
    def test_plain_heading(self):
        assert checker.github_slug("Exit codes", {}) == "exit-codes"

    def test_code_span_kept_punctuation_stripped(self):
        assert checker.github_slug("`repro run`", {}) == "repro-run"

    def test_duplicates_get_suffixes(self):
        seen = {}
        assert checker.github_slug("Setup", seen) == "setup"
        assert checker.github_slug("Setup", seen) == "setup-1"
        assert checker.github_slug("Setup", seen) == "setup-2"

    def test_flags_and_dots(self):
        assert (
            checker.github_slug("Sampling kernel: `--kernel` and `--kernel-batch`", {})
            == "sampling-kernel---kernel-and---kernel-batch"
        )


class TestCheckerCatchesBreakage:
    def _write(self, root, rel, text):
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def test_missing_file_and_anchor(self, tmp_path):
        self._write(tmp_path, "docs/README.md", "[a](gone.md)\n[b](real.md#nope)\n")
        self._write(tmp_path, "docs/real.md", "# Real\n")
        problems = checker.check_links(tmp_path)
        assert any("broken link" in p and "gone.md" in p for p in problems)
        assert any("broken anchor" in p and "#nope" in p for p in problems)

    def test_orphan_docs_page_flagged(self, tmp_path):
        self._write(tmp_path, "docs/README.md", "[a](linked.md)\n")
        self._write(tmp_path, "docs/linked.md", "# L\n")
        self._write(tmp_path, "docs/orphan.md", "# O\n")
        problems = checker.check_links(tmp_path)
        assert any("not linked from the index" in p and "orphan.md" in p for p in problems)

    def test_clean_tree_and_fenced_links_ignored(self, tmp_path):
        self._write(
            tmp_path,
            "docs/README.md",
            "[a](page.md#a-heading)\n```\n[not a link](nowhere.md)\n```\n",
        )
        self._write(tmp_path, "docs/page.md", "# A heading\n")
        assert checker.check_links(tmp_path) == []

    def test_escaping_link_flagged(self, tmp_path):
        self._write(tmp_path, "docs/README.md", "[up](../../etc/passwd)\n")
        problems = checker.check_links(tmp_path)
        assert any("escapes the repository" in p for p in problems)
