"""Unit + property tests for the CSR graph core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphConstructionError
from repro.graph.csr import CSRGraph
from repro.graph.builder import from_edge_array

from conftest import make_graph


class TestConstruction:
    def test_basic_shape(self, line_graph):
        assert line_graph.num_vertices == 5
        assert line_graph.num_edges == 4

    def test_empty_graph(self, empty_graph):
        assert empty_graph.num_vertices == 0
        assert empty_graph.num_edges == 0

    def test_isolated_vertices(self, isolated_graph):
        assert isolated_graph.num_vertices == 5
        assert isolated_graph.num_edges == 0
        assert np.all(isolated_graph.out_degree() == 0)

    def test_rejects_bad_indptr_shape(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(3, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(
                2, np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0])
            )

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(2, np.array([0, 1, 2]), np.array([0, 5]), np.ones(2))

    def test_rejects_probability_above_one(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(2, np.array([0, 1, 2]), np.array([1, 0]), np.array([0.5, 1.5]))

    def test_rejects_negative_probability(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(2, np.array([0, 1, 2]), np.array([1, 0]), np.array([0.5, -0.1]))

    def test_rejects_probs_length_mismatch(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(2, np.array([0, 1, 2]), np.array([1, 0]), np.ones(3))

    def test_rejects_edges_in_empty_graph(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(0, np.array([0]), np.array([0]), np.array([1.0]))

    def test_dtypes_canonicalised(self, line_graph):
        assert line_graph.indptr.dtype == np.int64
        assert line_graph.indices.dtype == np.int32
        assert line_graph.probs.dtype == np.float64


class TestAccessors:
    def test_out_degree_vector(self, star_graph):
        degs = star_graph.out_degree()
        assert degs[0] == 8
        assert np.all(degs[1:] == 0)

    def test_out_degree_scalar(self, star_graph):
        assert star_graph.out_degree(0) == 8
        assert star_graph.out_degree(3) == 0

    def test_neighbors_view_no_copy(self, star_graph):
        nbrs = star_graph.neighbors(0)
        assert nbrs.base is star_graph.indices

    def test_neighbors_content(self, line_graph):
        assert list(line_graph.neighbors(2)) == [3]
        assert list(line_graph.neighbors(4)) == []

    def test_edge_probs_aligned(self, diamond_graph):
        nbrs = diamond_graph.neighbors(0)
        probs = diamond_graph.edge_probs(0)
        got = dict(zip(nbrs.tolist(), probs.tolist()))
        assert got == {1: 1.0, 2: 0.5}

    def test_iter_edges_roundtrip(self, diamond_graph):
        edges = set(diamond_graph.iter_edges())
        assert (0, 2, 0.5) in edges
        assert len(edges) == 4

    def test_edge_array_shapes(self, diamond_graph):
        src, dst, p = diamond_graph.edge_array()
        assert src.shape == dst.shape == p.shape == (4,)
        assert list(src) == [0, 0, 1, 2]

    def test_nbytes_positive(self, line_graph):
        assert line_graph.nbytes() > 0

    def test_equality(self, line_graph):
        other = make_graph([(i, i + 1, 1.0) for i in range(4)], n=5)
        assert line_graph == other

    def test_inequality_on_probs(self, line_graph):
        other = make_graph([(i, i + 1, 0.5) for i in range(4)], n=5)
        assert line_graph != other


class TestTranspose:
    def test_transpose_reverses_edges(self, line_graph):
        rev = line_graph.transpose()
        assert list(rev.neighbors(1)) == [0]
        assert list(rev.neighbors(0)) == []

    def test_transpose_preserves_probs(self, diamond_graph):
        rev = diamond_graph.transpose()
        # Edge (0, 2, 0.5) becomes (2, 0, 0.5).
        idx = list(rev.neighbors(2)).index(0)
        assert rev.edge_probs(2)[idx] == 0.5

    def test_transpose_cached(self, line_graph):
        assert line_graph.transpose() is line_graph.transpose()

    def test_double_transpose_is_original(self, diamond_graph):
        assert diamond_graph.transpose().transpose() is diamond_graph

    def test_transpose_degree_sums(self, two_triangles):
        rev = two_triangles.transpose()
        assert rev.num_edges == two_triangles.num_edges
        assert (
            np.asarray(rev.out_degree()).sum()
            == np.asarray(two_triangles.out_degree()).sum()
        )


class TestWithProbs:
    def test_shares_topology(self, line_graph):
        g2 = line_graph.with_probs(np.full(4, 0.3))
        assert g2.indices is not None
        assert np.array_equal(g2.indices, line_graph.indices)
        assert np.all(g2.probs == 0.3)

    def test_rejects_wrong_length(self, line_graph):
        with pytest.raises(GraphConstructionError):
            line_graph.with_probs(np.ones(3))


@st.composite
def random_edge_arrays(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)


class TestPropertyBased:
    @given(random_edge_arrays())
    @settings(max_examples=60, deadline=None)
    def test_csr_roundtrips_edges(self, data):
        n, src, dst = data
        g = from_edge_array(src, dst, num_vertices=n)
        back = {(u, v) for u, v, _ in g.iter_edges()}
        expected = {(int(u), int(v)) for u, v in zip(src, dst) if u != v}
        assert back == expected

    @given(random_edge_arrays())
    @settings(max_examples=60, deadline=None)
    def test_indptr_invariants(self, data):
        n, src, dst = data
        g = from_edge_array(src, dst, num_vertices=n)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_edges
        assert np.all(np.diff(g.indptr) >= 0)

    @given(random_edge_arrays())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, data):
        n, src, dst = data
        g = from_edge_array(src, dst, num_vertices=n)
        gtt = g.transpose().transpose()
        assert {(u, v) for u, v, _ in g.iter_edges()} == {
            (u, v) for u, v, _ in gtt.iter_edges()
        }

    @given(random_edge_arrays())
    @settings(max_examples=60, deadline=None)
    def test_degree_conservation_under_transpose(self, data):
        n, src, dst = data
        g = from_edge_array(src, dst, num_vertices=n)
        rev = g.transpose()
        indeg = np.bincount(g.indices, minlength=n)
        assert np.array_equal(np.asarray(rev.out_degree()), indeg)
